// Ablation: tasklet count vs DPU throughput. UPMEM's in-order pipeline needs
// >= pipeline_depth (11) resident tasklets to reach 1 instruction/cycle
// (Section II-B: "multithreaded optimization is necessary ... to hide memory
// access latency and fully utilize the deep processor pipeline"). This sweep
// shows the engine's batch time tracking the modeled IPC curve, and where
// the workload flips from pipeline-starved to DMA-bound.

#include <cstdio>

#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

int main() {
  BenchScale scale;
  const BenchData bench = make_sift_bench(scale);
  const std::size_t nprobe = 16;
  const IvfPqIndex index = build_index(bench, 128);

  print_title("Ablation: tasklets per DPU (pipeline depth 11)");
  std::printf("%9s | %8s | %11s | %9s | %s\n", "tasklets", "IPC", "busy (s)",
              "speedup", "bound");
  print_rule();

  double t1 = 0.0;
  for (std::size_t tasklets : {1, 2, 4, 8, 11, 16, 24}) {
    DrimEngineOptions o = default_engine_options(scale, nprobe);
    o.pim.tasklets = tasklets;
    DrimAnnEngine engine(index, bench.data.learn, o);
    DrimSearchStats stats;
    engine.search(bench.data.queries, scale.k, nprobe, &stats);
    if (tasklets == 1) t1 = stats.dpu_busy_seconds;

    // Bound classification from the aggregate counters.
    const double compute_cycles =
        static_cast<double>(stats.counters.total_instr_cycles()) /
        o.pim.effective_ipc();
    const double dma_cycles = stats.counters.total_dma_cycles();
    std::printf("%9zu | %8.3f | %11.5f | %8.2fx | %s\n", tasklets,
                o.pim.effective_ipc(), stats.dpu_busy_seconds,
                t1 / stats.dpu_busy_seconds,
                compute_cycles > dma_cycles ? "compute" : "DMA");
  }
  print_rule();
  std::printf("expected: near-linear speedup up to 11 tasklets (pipeline fill), "
              "then flat —\nthe deep pipeline is why single-threaded DPU code "
              "cannot exploit UPMEM\n");
  return 0;
}
