// Figure 2 reproduction: roofline analysis of the Faiss-style CPU baseline.
// The paper's claim: every (nlist, nprobe) setting that balances performance
// and accuracy lands in the memory-bound region of the CPU roofline, which
// motivates moving ANNS to a high-bandwidth PIM platform.
//
// The table prints, per setting, the pipeline's arithmetic intensity from
// the Eq. (1)-(12) cost model, the roofline-attainable GFLOP/s at that
// intensity, and the bound classification. A google-benchmark microbenchmark
// of the ADC scan kernel on this container follows for reference.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

void roofline_table() {
  const PlatformParams cpu = cpu_platform();  // full 32-thread paper Xeon
  const double peak_flops = cpu.frequency_hz * cpu.pe;          // compute roof
  const double ridge = peak_flops / cpu.bandwidth_Bps;          // ops/byte

  std::printf("Fig. 2 — roofline of Faiss-CPU (paper Xeon: %.0f GFLOP/s peak, "
              "%.0f GB/s)\nridge point: %.1f ops/byte\n",
              peak_flops / 1e9, cpu.bandwidth_Bps / 1e9, ridge);
  print_title("(nlist, nprobe) settings of SIFT100M-scale IVF-PQ");
  std::printf("%7s %7s | %10s | %12s | %s\n", "nlist", "nprobe", "AI op/B",
              "attainable", "bound");
  print_rule();

  AnnWorkload w;  // paper-scale SIFT100M defaults
  for (double nlist : {4096.0, 16384.0, 65536.0}) {
    for (double nprobe : {32.0, 96.0, 128.0}) {
      w.C = w.N / nlist;
      w.P = nprobe;
      const double ai = arithmetic_intensity(w, /*multiplier_less=*/false);
      const double attainable = std::min(peak_flops, ai * cpu.bandwidth_Bps);
      std::printf("%7.0f %7.0f | %10.2f | %9.0f GF | %s\n", nlist, nprobe, ai,
                  attainable / 1e9, ai < ridge ? "memory-bound" : "compute-bound");
    }
  }
  print_rule();
  std::printf("paper finding reproduced: all practical settings fall left of the "
              "ridge (memory-bound)\n\n");
}

/// Microbenchmark: the ADC inner scan (DC+TS) on this container.
void BM_AdcScan(benchmark::State& state) {
  static BenchScale scale = [] {
    BenchScale s;
    s.num_base = 20'000;
    s.num_queries = 16;
    s.num_learn = 4'000;
    return s;
  }();
  static BenchData bench = make_sift_bench(scale);
  static IvfPqIndex index = build_index(bench, 128);

  CpuIvfPq cpu(index);
  const auto nprobe = static_cast<std::size_t>(state.range(0));
  std::size_t codes = 0;
  for (auto _ : state) {
    CpuSearchStats stats;
    cpu.search_batch(bench.data.queries, scale.k, nprobe, &stats);
    codes += stats.codes_scanned;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(codes));
  state.counters["codes/s"] =
      benchmark::Counter(static_cast<double>(codes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AdcScan)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  roofline_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
