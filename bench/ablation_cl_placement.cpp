// Ablation: cluster-locating placement (Section III-B). DRIM-ANN keeps CL on
// the host because, after the multiplier-less conversion, CL has the highest
// compute-to-IO ratio of the five phases and overlaps the PIM launch for
// free. This bench runs both placements end-to-end and decomposes where the
// CL-on-PIM variant loses: the extra serialized launch and the P * num_dpus
// candidate traffic over the thin host link.

#include <cstdio>

#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

int main() {
  BenchScale scale;
  const BenchData bench = make_sift_bench(scale);
  const std::size_t nprobe = 16;

  print_title("Ablation: CL on host (overlapped) vs CL on DPUs (serialized)");
  std::printf("%6s %-9s | %9s | %11s | %11s | %11s\n", "nlist", "CL", "R@10",
              "total (s)", "CL cost (s)", "xfer out(s)");
  print_rule();

  for (std::size_t nlist : {128, 256}) {
    const IvfPqIndex index = build_index(bench, nlist);
    for (bool on_pim : {false, true}) {
      DrimEngineOptions o = default_engine_options(scale, nprobe);
      o.cl_on_pim = on_pim;
      const DrimRun run = run_drim(bench, index, o, scale.k, nprobe);
      const double cl_cost =
          on_pim ? run.stats.phase_dpu_seconds[static_cast<int>(Phase::CL)] /
                       static_cast<double>(scale.num_dpus)
                 : run.stats.host_cl_seconds;
      std::printf("%6zu %-9s | %9.3f | %11.5f | %11.5f | %11.6f\n", nlist,
                  on_pim ? "on PIM" : "on host", run.recall,
                  run.stats.total_seconds, cl_cost,
                  run.stats.transfer_out_seconds);
    }
  }
  print_rule();
  std::printf("host CL overlaps the search launch entirely; PIM CL adds a barrier\n"
              "launch plus nprobe x num_dpus candidate pulls per query — the\n"
              "quantitative form of the paper's placement heuristic\n");
  return 0;
}
