// Figure 7 reproduction: end-to-end performance on the DEEP-like corpus
// (D=96, quantized to uint8 as in the paper). The paper reports 0.61x-2.07x
// over Faiss-CPU (geomean 1.17x) — notably lower than SIFT because LC takes
// ~10x larger share of total time on DEEP, so DRIM-ANN's advantage shrinks
// and is best at small nprobe.

#include <cstdio>

#include "common/stats.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

void run_row(const BenchData& bench, const BenchScale& scale, std::size_t nlist,
             std::size_t nprobe, std::vector<double>& speedups) {
  // The DEEP sweep uses larger nlist (smaller clusters) than the SIFT one:
  // with C shrunk, the fixed per-(q,c) LUT construction dominates, which is
  // the paper's DEEP regime ("LC takes about 10 times larger proportion ...
  // than on SIFT100M") and what shrinks DRIM-ANN's advantage there.
  const IvfPqIndex index = build_index(bench, nlist);
  const CpuRun cpu = run_cpu(bench, index, scale.k, nprobe, scale.num_dpus);
  const DrimRun drim =
      run_drim(bench, index, default_engine_options(scale, nprobe), scale.k, nprobe);
  const double speedup = drim.modeled_qps / cpu.modeled_qps;
  speedups.push_back(speedup);

  const double lc = drim.stats.phase_dpu_seconds[static_cast<int>(Phase::LC)];
  double all = 0.0;
  for (double s : drim.stats.phase_dpu_seconds) all += s;
  std::printf("%6zu %7zu | %8.3f %9.3f | %11.0f %11.0f | %8.2fx | %16s | %6.1f%%\n",
              nlist, nprobe, cpu.recall, drim.recall, cpu.modeled_qps,
              drim.modeled_qps, speedup, format_batch_tail(drim.batch_ms).c_str(),
              all > 0 ? 100.0 * lc / all : 0.0);
}

void header() {
  std::printf("%6s %7s | %8s %9s | %11s %11s | %9s | %16s | %7s\n", "nlist",
              "nprobe", "cpu R@10", "drim R@10", "CPU QPS*", "DRIM QPS*", "speedup",
              "batch ms 50/95/99", "LC share");
  print_rule(96);
}

}  // namespace

int main() {
  BenchScale scale;
  std::printf("Fig. 7 — end-to-end performance, DEEP-like (D=96)\n");
  std::printf("scaled: N=%zu Q=%zu, %zu simulated DPUs (* = modeled paper-platform QPS)\n",
              scale.num_base, scale.num_queries, scale.num_dpus);

  const BenchData bench = make_deep_bench(scale);
  std::vector<double> speedups;

  print_title("Fig. 7(a): sweep nlist, nprobe = 16");
  header();
  for (std::size_t nlist : {128, 256, 512, 1024}) {
    run_row(bench, scale, nlist, 16, speedups);
  }

  print_title("Fig. 7(b): sweep nprobe, nlist = 512");
  header();
  for (std::size_t nprobe : {8, 16, 24, 32}) {
    run_row(bench, scale, 512, nprobe, speedups);
  }

  print_rule();
  std::printf("geomean speedup over modeled CPU: %.2fx  (paper: 1.17x geomean, "
              "0.61x-2.07x range; LC-heavy workload shrinks the PIM advantage)\n",
              geomean(speedups));
  return 0;
}
