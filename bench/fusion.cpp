// Cluster-major task fusion bench (DESIGN.md §16): a Zipf(1.0) serving
// stream swept over fuse_width {1, 4, 8} x step batch size, self-checked and
// recorded.
//
// Two operating points, both run over the same stream:
//   - Today's DPU (compute_scale 1): fig13 shows the engine is compute-bound
//     here, so fusion is time-NEUTRAL by design — the self-check demands
//     bit-identical results at every width and a strictly positive
//     dc_bytes_saved counter (the MRAM bandwidth freed for everything else,
//     e.g. a co-resident update stream), with modeled qps within a small
//     tolerance of fuse_width 1.
//   - DSE-projected DPU (compute_scale 8, extending Fig. 13's 2x/5x
//     "computational ability" axis): once compute stops masking the DC
//     stream, the per-task MRAM re-streams bind the launch, and fusing >= 4
//     co-cluster tasks per stream must buy >= 1.3x modeled qps with results
//     still bit-identical — the regime UpANNS reports on real UPMEM
//     hardware, and the acceptance gate of ISSUE 10.
//
// `--smoke` shrinks the corpus so ctest/CI finishes in seconds;
// `--check-against FILE` compares the DSE-point width-4 speedup to a
// previously written BENCH_fusion.json and fails on a >15% regression.
// Writes BENCH_fusion.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "backend/drim_backend.hpp"
#include "common/rng.hpp"
#include "data/recall.hpp"
#include "drim/engine.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

using Results = std::vector<std::vector<Neighbor>>;

bool identical(const Results& a, const Results& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].dist != b[q][i].dist) return false;
    }
  }
  return true;
}

/// Pull `metric` out of the row labeled `label` in a BENCH_*.json written by
/// BenchReport (single-line row objects; no general JSON needed).
double read_baseline_metric(const std::string& path, const std::string& label,
                            const std::string& metric) {
  std::ifstream in(path);
  if (!in) return -1.0;
  std::string line;
  const std::string label_needle = "\"label\": \"" + label + "\"";
  const std::string metric_needle = "\"" + metric + "\": ";
  while (std::getline(in, line)) {
    if (line.find(label_needle) == std::string::npos) continue;
    const std::size_t at = line.find(metric_needle);
    if (at == std::string::npos) return -1.0;
    return std::atof(line.c_str() + at + metric_needle.size());
  }
  return -1.0;
}

struct StreamRun {
  Results results;               ///< per request, in enqueue order
  double modeled_seconds = 0.0;  ///< backend's modeled stream total
  double qps = 0.0;
  std::uint64_t dc_bytes_saved = 0;
  double recall = 0.0;
};

/// Drive the Zipf stream through the backend's enqueue/step protocol — the
/// same path the serving runtime uses — in steps of `batch` queries.
StreamRun run_stream(const BenchData& bench, const IvfPqIndex& index,
                     const DrimEngineOptions& opts,
                     const std::vector<std::uint32_t>& stream, std::size_t k,
                     std::size_t nprobe, std::size_t batch) {
  DrimAnnEngine engine(index, bench.data.learn, opts);
  DrimBackend backend(engine);
  std::vector<std::uint32_t> handles;
  handles.reserve(stream.size());
  for (const std::uint32_t q : stream) {
    handles.push_back(backend.enqueue(bench.data.queries.row(q), k, nprobe));
  }
  std::size_t stepped = 0;
  while (stepped < stream.size()) {
    const std::size_t take = std::min(batch, stream.size() - stepped);
    backend.step(take, /*flush=*/stepped + take == stream.size());
    stepped += take;
  }
  while (backend.has_deferred()) backend.step(0, /*flush=*/true);

  StreamRun out;
  out.results.reserve(handles.size());
  for (const std::uint32_t h : handles) out.results.push_back(backend.take_results(h));
  const BackendStats stats = backend.stats();
  out.modeled_seconds = stats.total_seconds;
  out.qps = stats.qps();
  out.dc_bytes_saved = stats.dc_bytes_saved;
  std::vector<std::vector<Neighbor>> gt;
  gt.reserve(stream.size());
  for (const std::uint32_t q : stream) gt.push_back(bench.ground_truth[q]);
  out.recall = mean_recall_at_k(out.results, gt, k);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string check_against;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check-against") == 0 && i + 1 < argc) {
      check_against = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check-against FILE]\n", argv[0]);
      return 2;
    }
  }

  // Paper-regime clusters (C = N/nlist in the thousands) with a compact
  // codebook: C drives the DC-stream share this bench measures, and
  // split_threshold is raised so a shard holds a whole cluster — fusing
  // within fragments of a split cluster would understate the re-streams the
  // unfused engine pays.
  BenchScale scale;
  std::size_t nlist = 64;
  std::size_t stream_len = 512;
  std::vector<std::size_t> batches = {64, 256};
  if (smoke) {
    scale.num_base = 40'000;
    scale.num_queries = 64;
    scale.num_learn = 6'000;
    scale.num_dpus = 16;
    nlist = 16;
    stream_len = 192;
    batches = {32, 96};
  }
  const std::size_t nprobe = 16;
  const std::size_t k = scale.k;
  const std::size_t pq_m = 16;
  const std::size_t pq_cb = 32;
  const double dse_compute_scale = 8.0;
  configure_host_threads(scale.threads);

  print_title("fusion: cluster-major task fusion on a Zipf(1.0) stream (" +
              std::string(smoke ? "smoke" : "full") + ")");
  const BenchData bench = make_sift_bench(scale);
  const IvfPqIndex index = build_index(bench, nlist, pq_m, pq_cb);
  std::printf("N=%zu, pool %zu, stream %zu, %zu DPUs, nlist=%zu (C~%zu), "
              "m=%zu, cb=%zu, nprobe=%zu, k=%zu\n",
              scale.num_base, scale.num_queries, stream_len, scale.num_dpus,
              nlist, scale.num_base / nlist, pq_m, pq_cb, nprobe, k);

  // Zipf(1.0) request stream over the query pool: hot queries repeat, so hot
  // clusters collect many co-cluster tasks per batch — the skew ISSUE 10's
  // motivation (and the paper's load-imbalance observation) says serving
  // sees.
  Rng rng(42);
  const ZipfSampler zipf(static_cast<std::uint32_t>(bench.data.queries.count()), 1.0);
  std::vector<std::uint32_t> stream(stream_len);
  for (auto& q : stream) q = zipf(rng);

  BenchReport report("fusion");
  report.set_config("mode", smoke ? std::string("smoke") : std::string("full"));
  report.set_config("num_base", scale.num_base);
  report.set_config("num_dpus", scale.num_dpus);
  report.set_config("nlist", nlist);
  report.set_config("pq_m", pq_m);
  report.set_config("pq_cb", pq_cb);
  report.set_config("nprobe", nprobe);
  report.set_config("k", k);
  report.set_config("stream_len", stream_len);
  report.set_config("zipf_skew", 1.0);
  report.set_config("dse_compute_scale", dse_compute_scale);

  const auto options_for = [&](std::size_t width, std::size_t batch,
                               double compute_scale) {
    DrimEngineOptions o = default_engine_options(scale, nprobe);
    o.platform = PimPlatformKind::kSim;
    o.layout.split_threshold = 4096;  // keep whole paper-regime clusters
    o.fuse_width = width;
    o.batch_size = batch;
    o.pim.compute_scale = compute_scale;
    return o;
  };

  const std::vector<std::size_t> widths = {1, 4, 8};
  bool ok = true;
  double dse_speedup_w4 = 0.0;  // best over batch sizes (the gated headline)

  for (const double cs : {1.0, dse_compute_scale}) {
    const bool dse = cs > 1.0;
    print_title(dse ? "DSE-projected DPU (compute_scale 8): DC stream binds"
                    : "Today's DPU (compute_scale 1): compute-bound, "
                      "fusion frees bandwidth");
    std::printf("%6s %6s | %10s %8s | %9s | %10s | %8s\n", "batch", "width",
                "modeled ms", "qps", "speedup", "saved MB", "recall");
    print_rule(72);
    for (const std::size_t batch : batches) {
      double qps_w1 = 0.0;
      Results ref;
      for (const std::size_t width : widths) {
        const StreamRun run = run_stream(bench, index, options_for(width, batch, cs),
                                         stream, k, nprobe, batch);
        if (width == 1) {
          qps_w1 = run.qps;
          ref = run.results;
        }
        const bool same = width == 1 || identical(ref, run.results);
        const double speedup = qps_w1 > 0 ? run.qps / qps_w1 : 0.0;
        std::printf("%6zu %6zu | %10.3f %8.0f | %8.2fx | %10.2f | %8.4f%s\n",
                    batch, width, run.modeled_seconds * 1e3, run.qps, speedup,
                    static_cast<double>(run.dc_bytes_saved) / 1e6, run.recall,
                    same ? "" : "  RESULTS DIVERGED");
        char label[48];
        std::snprintf(label, sizeof(label), "cs%zu_batch%zu_width%zu",
                      static_cast<std::size_t>(cs), batch, width);
        report.add_row(label);
        report.add_metric("modeled_seconds", run.modeled_seconds);
        report.add_metric("qps", run.qps);
        report.add_metric("speedup", speedup);
        report.add_metric("dc_bytes_saved", static_cast<double>(run.dc_bytes_saved));
        report.add_metric("identical", same ? 1.0 : 0.0);
        report.add_metric("recall", run.recall);

        // Self-checks, both operating points: results never change, and the
        // saved-bytes counter behaves (zero unfused, positive fused).
        ok = ok && same;
        ok = ok && (width == 1 ? run.dc_bytes_saved == 0 : run.dc_bytes_saved > 0);
        if (!dse) {
          // Compute-bound point: fusion must be ~time-neutral (the few group
          // descriptor cycles are noise, not a regression).
          ok = ok && speedup >= 0.98;
        } else if (width == 4) {
          dse_speedup_w4 = std::max(dse_speedup_w4, speedup);
        }
        if (dse && width > 1) ok = ok && speedup > 1.0;
      }
    }
  }
  print_rule(72);
  std::printf("DSE-point width-4 speedup (best batch): %.2fx (gate >= 1.30x)\n",
              dse_speedup_w4);
  report.add_row("fusion_gate");
  report.add_metric("dse_speedup_w4", dse_speedup_w4);
  ok = ok && dse_speedup_w4 >= 1.3;

  report.write();

  if (!check_against.empty()) {
    const double baseline =
        read_baseline_metric(check_against, "fusion_gate", "dse_speedup_w4");
    if (baseline <= 0.0) {
      std::fprintf(stderr, "FAIL: could not read dse_speedup_w4 from %s\n",
                   check_against.c_str());
      return 1;
    }
    const double floor = 0.85 * baseline;
    std::printf("regression gate: dse_speedup_w4 %.2f vs baseline %.2f (floor %.2f)\n",
                dse_speedup_w4, baseline, floor);
    if (dse_speedup_w4 < floor) {
      std::fprintf(stderr, "FAIL: fusion speedup regressed >15%% (%.2f < %.2f)\n",
                   dse_speedup_w4, floor);
      return 1;
    }
  }

  if (!ok) {
    std::printf("FAILED: fusion invariants violated (see above)\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
