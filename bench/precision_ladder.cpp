// Precision-ladder bench (quantization ladder, DESIGN.md §15): the three
// contracts of the 4-bit rung, self-checked and recorded.
//
//   1. Full-rung bit-identity: building the engine with the ladder enabled
//      (enable_q4) and serving every query at full precision returns the
//      SAME ids, distances, AND modeled times as an engine without the
//      ladder, on BOTH platforms (sim and analytic). The ladder is free
//      until a query asks for the cheap rung.
//   2. Q4 rung: the packed 4-bit path is >= 1.5x the full rung's modeled
//      qps at measurably lower recall, with sim and analytic bit-identical
//      to each other (results and charges — the charge-twin contract holds
//      on the new kernel phases too).
//   3. Degrade-before-shed: at overload, admission control that degrades
//      predicted SLO violators to the cheap rung (instead of shedding them)
//      holds goodput at or above the shed-only policy with zero timeouts on
//      the same trace.
//
// `--smoke` shrinks the corpus so ctest/CI finishes in seconds;
// `--check-against FILE` compares the q4 speedup to a previously written
// BENCH_precision_ladder.json and fails on a >15% regression. Writes
// BENCH_precision_ladder.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "backend/drim_backend.hpp"
#include "core/precision.hpp"
#include "data/recall.hpp"
#include "drim/engine.hpp"
#include "serve/runtime.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

using Results = std::vector<std::vector<Neighbor>>;

bool identical(const Results& a, const Results& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].dist != b[q][i].dist) return false;
    }
  }
  return true;
}

/// Pull `metric` out of the row labeled `label` in a BENCH_*.json written by
/// BenchReport (single-line row objects; no general JSON needed).
double read_baseline_metric(const std::string& path, const std::string& label,
                            const std::string& metric) {
  std::ifstream in(path);
  if (!in) return -1.0;
  std::string line;
  const std::string label_needle = "\"label\": \"" + label + "\"";
  const std::string metric_needle = "\"" + metric + "\": ";
  while (std::getline(in, line)) {
    if (line.find(label_needle) == std::string::npos) continue;
    const std::size_t at = line.find(metric_needle);
    if (at == std::string::npos) return -1.0;
    return std::atof(line.c_str() + at + metric_needle.size());
  }
  return -1.0;
}

struct RungRun {
  Results results;
  double modeled_seconds = 0.0;
  double rerank_seconds = 0.0;
  double recall = 0.0;
};

RungRun run_rung(const BenchData& bench, const IvfPqIndex& index,
                 const DrimEngineOptions& opts, std::size_t k, std::size_t nprobe,
                 Precision rung) {
  DrimAnnEngine engine(index, bench.data.learn, opts);
  DrimSearchStats stats;
  RungRun out;
  out.results = engine.search(bench.data.queries, k, nprobe, &stats, rung);
  out.modeled_seconds = stats.total_seconds;
  out.rerank_seconds = stats.host_rerank_seconds;
  out.recall = mean_recall_at_k(out.results, bench.ground_truth, k);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string check_against;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check-against") == 0 && i + 1 < argc) {
      check_against = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check-against FILE]\n", argv[0]);
      return 2;
    }
  }

  BenchScale scale;
  std::size_t nlist = 128;
  if (smoke) {
    scale.num_base = 20'000;
    scale.num_queries = 64;
    scale.num_learn = 4'000;
    scale.num_dpus = 16;
    nlist = 32;
  }
  const std::size_t nprobe = 16;
  const std::size_t k = scale.k;
  configure_host_threads(scale.threads);

  print_title("precision_ladder: 4-bit rung vs full precision (" +
              std::string(smoke ? "smoke" : "full") + ")");
  const BenchData bench = make_sift_bench(scale);
  const IvfPqIndex index = build_index(bench, nlist);
  std::printf("N=%zu, %zu queries, %zu DPUs, nlist=%zu, nprobe=%zu, k=%zu\n",
              scale.num_base, scale.num_queries, scale.num_dpus, nlist, nprobe, k);

  BenchReport report("precision_ladder");
  report.set_config("mode", smoke ? std::string("smoke") : std::string("full"));
  report.set_config("num_base", scale.num_base);
  report.set_config("num_dpus", scale.num_dpus);
  report.set_config("nlist", nlist);
  report.set_config("nprobe", nprobe);
  report.set_config("k", k);

  bool ok = true;

  // ---- 1. Full-rung bit-identity: the ladder is free until used ----------
  print_title("Full-rung bit-identity (ladder on, every query at full)");
  std::printf("%10s | %10s | %12s | %8s\n", "platform", "identical", "modeled ms",
              "recall");
  print_rule(52);
  for (PimPlatformKind platform :
       {PimPlatformKind::kSim, PimPlatformKind::kAnalytic}) {
    DrimEngineOptions opts = default_engine_options(scale, nprobe);
    opts.platform = platform;
    opts.enable_q4 = false;
    const RungRun off = run_rung(bench, index, opts, k, nprobe, Precision::kFull);
    opts.enable_q4 = true;
    const RungRun on = run_rung(bench, index, opts, k, nprobe, Precision::kFull);
    const bool same = identical(off.results, on.results) &&
                      off.modeled_seconds == on.modeled_seconds &&
                      on.rerank_seconds == 0.0;
    const std::string pname = pim_platform_name(platform);
    std::printf("%10s | %10s | %12.3f | %8.4f\n", pname.c_str(),
                same ? "yes" : "NO", on.modeled_seconds * 1e3, on.recall);
    report.add_row("full_rung_identity_" + pname);
    report.add_metric("identical", same ? 1.0 : 0.0);
    report.add_metric("modeled_seconds", on.modeled_seconds);
    report.add_metric("recall", on.recall);
    ok = ok && same;
  }

  // ---- 2. Q4 rung: speedup, recall, and the charge twin ------------------
  print_title("Q4 rung — packed 4-bit codes + host exact-rerank tail");
  DrimEngineOptions ladder_opts = default_engine_options(scale, nprobe);
  ladder_opts.enable_q4 = true;
  ladder_opts.platform = PimPlatformKind::kSim;
  const RungRun full_sim =
      run_rung(bench, index, ladder_opts, k, nprobe, Precision::kFull);
  const RungRun q4_sim = run_rung(bench, index, ladder_opts, k, nprobe, Precision::kQ4);
  ladder_opts.platform = PimPlatformKind::kAnalytic;
  const RungRun q4_ana = run_rung(bench, index, ladder_opts, k, nprobe, Precision::kQ4);

  const double full_qps =
      static_cast<double>(scale.num_queries) / full_sim.modeled_seconds;
  const double q4_qps = static_cast<double>(scale.num_queries) / q4_sim.modeled_seconds;
  const double q4_speedup = q4_qps / full_qps;
  const bool twins = identical(q4_sim.results, q4_ana.results) &&
                     q4_sim.modeled_seconds == q4_ana.modeled_seconds;
  std::printf("%6s | %12s | %10s | %8s\n", "rung", "modeled ms", "qps", "recall");
  print_rule(48);
  std::printf("%6s | %12.3f | %10.0f | %8.4f\n", "full",
              full_sim.modeled_seconds * 1e3, full_qps, full_sim.recall);
  std::printf("%6s | %12.3f | %10.0f | %8.4f\n", "q4", q4_sim.modeled_seconds * 1e3,
              q4_qps, q4_sim.recall);
  std::printf("q4 speedup %.2fx, recall delta %+.4f, platforms %s "
              "(rerank %.3f ms)\n",
              q4_speedup, q4_sim.recall - full_sim.recall,
              twins ? "bit-identical" : "DIVERGED", q4_sim.rerank_seconds * 1e3);
  report.add_row("q4_rung");
  report.add_metric("full_modeled_seconds", full_sim.modeled_seconds);
  report.add_metric("q4_modeled_seconds", q4_sim.modeled_seconds);
  report.add_metric("q4_speedup", q4_speedup);
  report.add_metric("full_recall", full_sim.recall);
  report.add_metric("q4_recall", q4_sim.recall);
  report.add_metric("platforms_identical", twins ? 1.0 : 0.0);
  // Acceptance: the cheap rung buys >= 1.5x modeled qps, pays measurable
  // recall (strictly lower: coarser codebooks lose candidates the exact
  // rerank tail cannot recover), and sim == analytic bit for bit.
  ok = ok && twins;
  ok = ok && q4_speedup >= 1.5;
  ok = ok && q4_sim.recall < full_sim.recall;
  ok = ok && q4_sim.recall > 0.4;  // degraded, not broken

  // ---- 3. Degrade-before-shed at overload --------------------------------
  print_title("Overload: degrade-to-q4 admission vs shed-only");
  serve::ServeParams sp;
  sp.batcher.max_batch = 32;
  sp.flush_every = 2;
  DrimEngineOptions serve_opts = default_engine_options(scale, nprobe);
  serve_opts.platform = PimPlatformKind::kSim;
  serve_opts.enable_q4 = true;
  serve_opts.batch_size = sp.batcher.max_batch;
  DrimAnnEngine serve_engine(index, bench.data.learn, serve_opts);
  DrimBackend backend(serve_engine);

  const double mean_batch_s =
      backend.estimate_batch_seconds(sp.batcher.max_batch, nprobe, k);
  const double capacity_qps =
      static_cast<double>(sp.batcher.max_batch) / mean_batch_s;
  sp.batcher.max_wait_s = mean_batch_s;
  sp.admission.slo_s = sp.batcher.max_wait_s + 6.0 * mean_batch_s;
  sp.admission.headroom = 0.6;  // shed/degrade conservatively (see serve_latency)

  serve::WorkloadParams wp;
  wp.num_requests = smoke ? 512 : 2048;
  wp.offered_qps = 1.5 * capacity_qps;
  wp.query_skew = 0.5;
  wp.k_choices = {static_cast<std::uint32_t>(k)};
  wp.nprobe_choices = {static_cast<std::uint32_t>(nprobe)};
  const std::vector<serve::Request> trace =
      serve::generate_workload(bench.data.queries.count(), wp);
  std::printf("capacity ~%.0f qps, offered %.0f qps (1.5x), SLO %.3f ms, "
              "%zu requests\n",
              capacity_qps, wp.offered_qps, sp.admission.slo_s * 1e3,
              wp.num_requests);

  std::printf("%10s | %6s %6s %8s | %9s | %8s\n", "policy", "served", "shed",
              "degraded", "goodput", "timeout%");
  print_rule(64);
  serve::ServeReport shed_rep, deg_rep;
  for (const bool degrade : {false, true}) {
    serve::ServeParams p = sp;
    p.admission.degrade_to_q4 = degrade;
    serve::ServeResult res =
        serve::ServingRuntime(backend, bench.data.queries, p).run(trace);
    std::printf("%10s | %6zu %6zu %8zu | %9.0f | %7.1f%%\n",
                degrade ? "degrade" : "shed-only", res.report.served,
                res.report.shed, res.report.degraded, res.report.goodput_qps,
                100.0 * res.report.timeout_rate);
    report.add_row(degrade ? "overload_degrade" : "overload_shed_only");
    report.add_metric("served", static_cast<double>(res.report.served));
    report.add_metric("shed", static_cast<double>(res.report.shed));
    report.add_metric("degraded", static_cast<double>(res.report.degraded));
    report.add_metric("goodput_qps", res.report.goodput_qps);
    report.add_metric("timeout_rate", res.report.timeout_rate);
    ok = ok && res.report.served + res.report.shed == res.report.offered;
    if (degrade) {
      deg_rep = res.report;
    } else {
      shed_rep = res.report;
      ok = ok && res.report.degraded == 0;  // no ladder without the knob
    }
  }
  std::printf("degrade goodput %.0f vs shed-only %.0f qps (%+.1f%%), "
              "%zu requests saved from shedding\n",
              deg_rep.goodput_qps, shed_rep.goodput_qps,
              shed_rep.goodput_qps > 0
                  ? 100.0 * (deg_rep.goodput_qps / shed_rep.goodput_qps - 1.0)
                  : 0.0,
              shed_rep.shed > deg_rep.shed ? shed_rep.shed - deg_rep.shed : 0);
  // Acceptance: degrading instead of shedding can only help goodput, must
  // actually exercise the cheap rung at 1.5x overload, and must not buy the
  // extra served requests with SLO violations.
  ok = ok && deg_rep.goodput_qps >= shed_rep.goodput_qps;
  ok = ok && deg_rep.degraded > 0;
  ok = ok && deg_rep.slo_violations == 0;

  report.write();

  if (!check_against.empty()) {
    const double baseline = read_baseline_metric(check_against, "q4_rung", "q4_speedup");
    if (baseline <= 0.0) {
      std::fprintf(stderr, "FAIL: could not read q4_speedup from %s\n",
                   check_against.c_str());
      return 1;
    }
    const double floor = 0.85 * baseline;
    std::printf("regression gate: q4_speedup %.2f vs baseline %.2f (floor %.2f)\n",
                q4_speedup, baseline, floor);
    if (q4_speedup < floor) {
      std::fprintf(stderr, "FAIL: q4 speedup regressed >15%% (%.2f < %.2f)\n",
                   q4_speedup, floor);
      return 1;
    }
  }

  if (!ok) {
    std::printf("FAILED: precision-ladder invariants violated (see above)\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
