// Figure 13 + Section V-D reproduction: scalability studies.
//  - Fig. 13: DRIM-ANN with 2x and 5x DPU computational ability vs the CPU
//    baseline (paper: 4.00x-5.71x and 5.77x-8.66x, geomeans 4.63x / 7.12x) —
//    the rise confirms the engine is compute-bound on today's DPUs.
//  - Section V-D: comparison against a Faiss-GPU-class platform (RTX 4090
//    model); the paper measures DRIM-ANN at 10.11%-53.05% of the 4090
//    (geomean 21.92%).
//  - Paper-scale run: the analytic platform prices the full 2530-DPU array
//    (trivial vs balanced layout) from the same cost tables without
//    simulating MRAM bytes, so the paper's DPU count fits in a few minutes
//    of host time; recall stays real via the host-exact replay.
//
// `--smoke` shrinks every sweep so ctest finishes in seconds. Writes
// BENCH_fig13_scaling.json.

#include <cstdio>
#include <cstring>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

DrimEngineOptions trivial_options(const BenchScale& scale, std::size_t nprobe) {
  DrimEngineOptions o = default_engine_options(scale, nprobe);
  o.layout.enable_split = false;
  o.layout.enable_duplicate = false;
  o.layout.heat_allocation = false;
  o.scheduler.enable_filter = false;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  BenchScale scale;
  if (smoke) {
    scale.num_base = 20'000;
    scale.num_queries = 64;
    scale.num_learn = 4'000;
    scale.num_dpus = 16;
  }
  configure_host_threads(scale.threads);
  const BenchData bench = make_sift_bench(scale);
  const std::size_t nprobe = 16;

  BenchReport report("fig13_scaling");
  report.set_config("mode", smoke ? std::string("smoke") : std::string("full"));
  report.set_config("num_base", scale.num_base);
  report.set_config("num_queries", scale.num_queries);
  report.set_config("num_dpus", scale.num_dpus);
  report.set_config("nprobe", nprobe);
  report.set_config("k", scale.k);

  print_title("Fig. 13: speedup over CPU with scaled DPU compute (SIFT-like)");
  std::printf("%6s | %9s %9s %9s\n", "nlist", "1x", "2x", "5x");
  print_rule();

  const std::vector<std::size_t> nlists =
      smoke ? std::vector<std::size_t>{32, 64}
            : std::vector<std::size_t>{32, 64, 128, 256};
  std::vector<double> s1, s2, s5;
  for (std::size_t nlist : nlists) {
    const IvfPqIndex index = build_index(bench, nlist);
    const CpuRun cpu = run_cpu(bench, index, scale.k, nprobe, scale.num_dpus);

    double speedups[3];
    const double scales[3] = {1.0, 2.0, 5.0};
    for (int i = 0; i < 3; ++i) {
      DrimEngineOptions o = default_engine_options(scale, nprobe);
      o.pim.compute_scale = scales[i];
      const DrimRun run = run_drim(bench, index, o, scale.k, nprobe);
      speedups[i] = cpu.modeled_seconds / run.modeled_seconds;
    }
    s1.push_back(speedups[0]);
    s2.push_back(speedups[1]);
    s5.push_back(speedups[2]);
    std::printf("%6zu | %8.2fx %8.2fx %8.2fx\n", nlist, speedups[0], speedups[1],
                speedups[2]);
    char label[48];
    std::snprintf(label, sizeof(label), "compute_scale nlist=%zu", nlist);
    report.add_row(label);
    report.add_metric("speedup_1x", speedups[0]);
    report.add_metric("speedup_2x", speedups[1]);
    report.add_metric("speedup_5x", speedups[2]);
  }
  print_rule();
  std::printf("geomeans: 1x %.2fx, 2x %.2fx, 5x %.2fx "
              "(paper: 2.92x, 4.63x, 7.12x)\n",
              geomean(s1), geomean(s2), geomean(s5));
  std::printf("the monotone rise confirms today's DPUs leave DRIM-ANN compute-bound\n");

  print_title("Section V-D: DRIM-ANN vs Faiss-GPU-class platform (model)");
  std::printf("%6s %7s | %12s %12s | %10s\n", "nlist", "nprobe", "GPU QPS*",
              "DRIM QPS*", "of GPU");
  print_rule();

  const std::vector<std::size_t> gpu_nlists =
      smoke ? std::vector<std::size_t>{32, 64}
            : std::vector<std::size_t>{64, 128, 256};
  std::vector<double> fractions;
  for (std::size_t nlist : gpu_nlists) {
    const IvfPqIndex index = build_index(bench, nlist);
    const DrimRun drim =
        run_drim(bench, index, default_engine_options(scale, nprobe), scale.k, nprobe);

    // GPU modeled at the same platform fraction as the CPU comparator.
    const AnnWorkload w =
        workload_for(index, scale.num_base, scale.num_queries, scale.k, nprobe);
    PlatformParams gpu = gpu_platform();
    const double ratio = static_cast<double>(scale.num_dpus) / 2530.0;
    gpu.pe *= ratio;
    gpu.bandwidth_Bps *= ratio;
    const double gpu_seconds = estimate_single(w, gpu, /*multiplier_less=*/false);
    const double gpu_qps = static_cast<double>(scale.num_queries) / gpu_seconds;
    const double frac = drim.modeled_qps / gpu_qps;
    fractions.push_back(frac);
    std::printf("%6zu %7zu | %12.0f %12.0f | %9.1f%%\n", nlist, nprobe, gpu_qps,
                drim.modeled_qps, 100.0 * frac);
    char label[48];
    std::snprintf(label, sizeof(label), "vs_gpu nlist=%zu", nlist);
    report.add_row(label);
    report.add_metric("gpu_qps", gpu_qps);
    report.add_metric("drim_qps", drim.modeled_qps);
    report.add_metric("fraction_of_gpu", frac);
  }
  print_rule();
  std::printf("geomean: %.1f%% of the GPU (paper: 21.92%% geomean, "
              "10.11%%-53.05%% range)\n",
              100.0 * geomean(fractions));

  // ---- paper-scale run on the analytic platform ----
  // The byte-level simulator is O(num_dpus * MRAM traffic) per batch and
  // cannot reach the paper's 2530-DPU array in reasonable time; the analytic
  // platform charges the same per-task cycle/DMA costs from the cost tables
  // without materializing MRAM, and the host-exact replay keeps the returned
  // neighbors (hence recall) identical to what the functional kernels would
  // compute. This section runs the full-array load-balance comparison the
  // paper's headline setting implies.
  BenchScale paper = scale;
  std::size_t paper_nlist;
  std::size_t paper_nprobe;
  if (smoke) {
    paper.num_dpus = 253;  // paper/10, keeps ctest fast
    paper_nlist = 512;
    paper_nprobe = 32;
  } else {
    paper.num_dpus = 2530;  // the paper's array
    paper_nlist = 4096;
    paper_nprobe = 96;  // the paper's headline nprobe
  }
  print_title("Paper-scale: 2530-DPU array on the analytic platform");
  std::printf("num_dpus=%zu, nlist=%zu, nprobe=%zu, platform=analytic\n",
              paper.num_dpus, paper_nlist, paper_nprobe);
  std::printf("%-10s | %11s %11s | %8s | %8s | %9s\n", "layout", "busy(s)",
              "imb", "recall", "wall(s)", "load(s)");
  print_rule();

  WallTimer paper_timer;
  const IvfPqIndex paper_index = build_index(bench, paper_nlist);
  double busy[2] = {0.0, 0.0};
  const char* names[2] = {"trivial", "balanced"};
  for (int i = 0; i < 2; ++i) {
    DrimEngineOptions o = i == 0 ? trivial_options(paper, paper_nprobe)
                                 : default_engine_options(paper, paper_nprobe);
    o.platform = PimPlatformKind::kAnalytic;
    const DrimRun run = run_drim(bench, paper_index, o, scale.k, paper_nprobe);
    busy[i] = run.stats.dpu_busy_seconds;
    const double imb = imbalance_factor(run.stats.per_dpu_seconds);
    std::printf("%-10s | %11.5f %10.2fx | %8.3f | %8.2f | %9.2f\n", names[i],
                busy[i], imb, run.recall, run.wall_seconds, run.load_wall_seconds);
    char label[48];
    std::snprintf(label, sizeof(label), "paper_scale %s", names[i]);
    report.add_row(label);
    report.add_metric("num_dpus", static_cast<double>(paper.num_dpus));
    report.add_metric("dpu_busy_seconds", busy[i]);
    report.add_metric("imbalance", imb);
    report.add_metric("recall", run.recall);
    report.add_metric("host_wall_seconds", run.wall_seconds);
    report.add_metric("load_wall_seconds", run.load_wall_seconds);
  }
  const double paper_speedup = busy[1] > 0.0 ? busy[0] / busy[1] : 0.0;
  print_rule();
  std::printf("load-balance stack at %zu DPUs: %.2fx lower DPU busy time; "
              "whole section took %.1f s of host time\n",
              paper.num_dpus, paper_speedup, paper_timer.seconds());
  report.add_row("paper_scale summary");
  report.add_metric("speedup", paper_speedup);
  report.add_metric("section_wall_seconds", paper_timer.seconds());

  // ---- extension: other commercial DRAM-PIM families (Section II-B) ----
  print_title("Extension: Eq. (13) estimates across DRAM-PIM families (paper scale)");
  std::printf("%-22s | %12s | %10s\n", "platform", "batch (s)", "vs UPMEM");
  print_rule();
  AnnWorkload w;  // SIFT100M, nlist = 2^14, nprobe = 96
  w.C = w.N / 16384.0;
  w.P = 96;
  const PlatformParams host = cpu_platform();
  const double upmem_s = estimate(w, host, upmem_platform()).total_seconds();
  struct Row {
    const char* name;
    PlatformParams pim;
  } rows[] = {
      {"UPMEM (2530 DPUs)", upmem_platform()},
      {"UPMEM, 2x compute", upmem_platform(2.0)},
      {"UPMEM, 5x compute", upmem_platform(5.0)},
      {"HBM-PIM class", hbm_pim_platform()},
  };
  for (const Row& row : rows) {
    const double s = estimate(w, host, row.pim).total_seconds();
    std::printf("%-22s | %12.4f | %9.2fx\n", row.name, s, upmem_s / s);
    report.add_row(row.name);
    report.add_metric("batch_seconds", s);
    report.add_metric("vs_upmem", upmem_s / s);
  }
  std::printf("HBM-PIM's logic-die FPUs remove the multiply premium but its far\n"
              "smaller unit count caps parallel LUT construction — consistent with\n"
              "the paper's observation that both families stay transfer-limited.\n");

  report.write();
  // Acceptance: the balanced layout must not be slower than trivial at the
  // paper's DPU count.
  if (paper_speedup < 1.0) {
    std::printf("FAILED: balanced layout slower than trivial at paper scale\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
