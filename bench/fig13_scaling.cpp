// Figure 13 + Section V-D reproduction: scalability studies.
//  - Fig. 13: DRIM-ANN with 2x and 5x DPU computational ability vs the CPU
//    baseline (paper: 4.00x-5.71x and 5.77x-8.66x, geomeans 4.63x / 7.12x) —
//    the rise confirms the engine is compute-bound on today's DPUs.
//  - Section V-D: comparison against a Faiss-GPU-class platform (RTX 4090
//    model); the paper measures DRIM-ANN at 10.11%-53.05% of the 4090
//    (geomean 21.92%).

#include <cstdio>

#include "common/stats.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

int main() {
  BenchScale scale;
  const BenchData bench = make_sift_bench(scale);
  const std::size_t nprobe = 16;

  print_title("Fig. 13: speedup over CPU with scaled DPU compute (SIFT-like)");
  std::printf("%6s | %9s %9s %9s\n", "nlist", "1x", "2x", "5x");
  print_rule();

  std::vector<double> s1, s2, s5;
  for (std::size_t nlist : {32, 64, 128, 256}) {
    const IvfPqIndex index = build_index(bench, nlist);
    const CpuRun cpu = run_cpu(bench, index, scale.k, nprobe, scale.num_dpus);

    double speedups[3];
    const double scales[3] = {1.0, 2.0, 5.0};
    for (int i = 0; i < 3; ++i) {
      DrimEngineOptions o = default_engine_options(scale, nprobe);
      o.pim.compute_scale = scales[i];
      const DrimRun run = run_drim(bench, index, o, scale.k, nprobe);
      speedups[i] = cpu.modeled_seconds / run.modeled_seconds;
    }
    s1.push_back(speedups[0]);
    s2.push_back(speedups[1]);
    s5.push_back(speedups[2]);
    std::printf("%6zu | %8.2fx %8.2fx %8.2fx\n", nlist, speedups[0], speedups[1],
                speedups[2]);
  }
  print_rule();
  std::printf("geomeans: 1x %.2fx, 2x %.2fx, 5x %.2fx "
              "(paper: 2.92x, 4.63x, 7.12x)\n",
              geomean(s1), geomean(s2), geomean(s5));
  std::printf("the monotone rise confirms today's DPUs leave DRIM-ANN compute-bound\n");

  print_title("Section V-D: DRIM-ANN vs Faiss-GPU-class platform (model)");
  std::printf("%6s %7s | %12s %12s | %10s\n", "nlist", "nprobe", "GPU QPS*",
              "DRIM QPS*", "of GPU");
  print_rule();

  std::vector<double> fractions;
  for (std::size_t nlist : {64, 128, 256}) {
    const IvfPqIndex index = build_index(bench, nlist);
    const DrimRun drim =
        run_drim(bench, index, default_engine_options(scale, nprobe), scale.k, nprobe);

    // GPU modeled at the same platform fraction as the CPU comparator.
    const AnnWorkload w =
        workload_for(index, scale.num_base, scale.num_queries, scale.k, nprobe);
    PlatformParams gpu = gpu_platform();
    const double ratio = static_cast<double>(scale.num_dpus) / 2530.0;
    gpu.pe *= ratio;
    gpu.bandwidth_Bps *= ratio;
    const double gpu_seconds = estimate_single(w, gpu, /*multiplier_less=*/false);
    const double gpu_qps = static_cast<double>(scale.num_queries) / gpu_seconds;
    const double frac = drim.modeled_qps / gpu_qps;
    fractions.push_back(frac);
    std::printf("%6zu %7zu | %12.0f %12.0f | %9.1f%%\n", nlist, nprobe, gpu_qps,
                drim.modeled_qps, 100.0 * frac);
  }
  print_rule();
  std::printf("geomean: %.1f%% of the GPU (paper: 21.92%% geomean, "
              "10.11%%-53.05%% range)\n",
              100.0 * geomean(fractions));

  // ---- extension: other commercial DRAM-PIM families (Section II-B) ----
  print_title("Extension: Eq. (13) estimates across DRAM-PIM families (paper scale)");
  std::printf("%-22s | %12s | %10s\n", "platform", "batch (s)", "vs UPMEM");
  print_rule();
  AnnWorkload w;  // SIFT100M, nlist = 2^14, nprobe = 96
  w.C = w.N / 16384.0;
  w.P = 96;
  const PlatformParams host = cpu_platform();
  const double upmem_s = estimate(w, host, upmem_platform()).total_seconds();
  struct Row {
    const char* name;
    PlatformParams pim;
  } rows[] = {
      {"UPMEM (2530 DPUs)", upmem_platform()},
      {"UPMEM, 2x compute", upmem_platform(2.0)},
      {"UPMEM, 5x compute", upmem_platform(5.0)},
      {"HBM-PIM class", hbm_pim_platform()},
  };
  for (const Row& row : rows) {
    const double s = estimate(w, host, row.pim).total_seconds();
    std::printf("%-22s | %12.4f | %9.2fx\n", row.name, s, upmem_s / s);
  }
  std::printf("HBM-PIM's logic-die FPUs remove the multiply premium but its far\n"
              "smaller unit count caps parallel LUT construction — consistent with\n"
              "the paper's observation that both families stay transfer-limited.\n");
  return 0;
}
