// Multi-shard cluster-tier throughput scaling (DESIGN.md §13).
//
// Builds the SIFT-like index, draws a Zipf-skewed request stream over the
// query pool, and replays it closed-loop (batches of 32 through the
// streaming enqueue/step API) against the cluster backend at 1, 2, and 4
// shards on the analytic platform — each shard a full PIM node with its own
// DPU array, clusters partitioned by the heat-balancing ShardPlan with the
// hottest fraction replicated. Reports modeled qps per shard count plus the
// router's per-shard dispatch balance.
//
// Self-checks (exit status, run under ctest and the release CI job):
//   - results are identical (ids AND distances) at every shard count, so
//     recall is exactly the single-shard baseline's;
//   - the 1-shard cluster backend reproduces the plain DrimBackend
//     bit-for-bit: ids, distances, modeled total, and every per-step time;
//   - modeled qps scales: >= 1.5x at 2 shards, >= 2.5x at 4 shards.
//
// `--smoke` shrinks the corpus so the run finishes in seconds. Writes
// BENCH_shard_scaling.json.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "backend/drim_backend.hpp"
#include "cluster/cluster_backend.hpp"
#include "data/recall.hpp"
#include "serve/workload.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

struct StreamRun {
  double total_seconds = 0.0;
  double qps = 0.0;
  std::vector<double> batch_seconds;
  std::vector<std::vector<Neighbor>> results;  ///< one row per request
  std::vector<ShardHealth> health;
};

/// Replay the request stream closed-loop through the streaming API in
/// `batch`-sized steps; returns modeled totals and per-request results.
StreamRun stream_requests(AnnBackend& backend, const FloatMatrix& pool,
                          const std::vector<serve::Request>& requests,
                          std::size_t k, std::size_t nprobe, std::size_t batch) {
  backend.reset_stream();
  StreamRun run;
  std::vector<std::uint32_t> handles;
  handles.reserve(requests.size());
  for (const serve::Request& r : requests) {
    handles.push_back(backend.enqueue(pool.row(r.query), k, nprobe));
  }
  std::size_t stepped = 0;
  while (stepped < requests.size()) {
    const std::size_t take = std::min(batch, requests.size() - stepped);
    backend.step(take, /*flush=*/stepped + take == requests.size());
    stepped += take;
  }
  while (backend.has_deferred()) backend.step(0, /*flush=*/true);
  run.results.reserve(handles.size());
  for (std::uint32_t h : handles) run.results.push_back(backend.take_results(h));
  const BackendStats stats = backend.stats();
  run.total_seconds = stats.total_seconds;
  run.qps = stats.total_seconds > 0
                ? static_cast<double>(requests.size()) / stats.total_seconds
                : 0.0;
  run.batch_seconds = stats.batch_seconds;
  run.health = backend.shard_health();
  return run;
}

bool identical_results(const std::vector<std::vector<Neighbor>>& a,
                       const std::vector<std::vector<Neighbor>>& b,
                       const char* what) {
  if (a.size() != b.size()) {
    std::printf("FAIL: %s: row count %zu vs %zu\n", what, a.size(), b.size());
    return false;
  }
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) {
      std::printf("FAIL: %s: query %zu has %zu vs %zu results\n", what, q,
                  a[q].size(), b[q].size());
      return false;
    }
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].dist != b[q][i].dist) {
        std::printf("FAIL: %s: query %zu rank %zu differs (%u,%g) vs (%u,%g)\n",
                    what, q, i, a[q][i].id, a[q][i].dist, b[q][i].id,
                    b[q][i].dist);
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t num_requests = 1024;
  double replication = 0.10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      num_requests = std::strtoul(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--replication") == 0 && i + 1 < argc) {
      replication = std::strtod(argv[++i], nullptr);
    }
  }

  BenchScale scale;
  std::size_t nlist = 128;
  if (smoke) {
    scale.num_base = 20'000;
    scale.num_queries = 64;
    scale.num_learn = 4'000;
    scale.num_dpus = 16;  // per shard
    nlist = 64;
    num_requests = 512;
  }
  const std::size_t nprobe = 16;
  const std::size_t batch = 32;
  configure_host_threads(scale.threads);

  std::printf("shard_scaling — cluster-tier modeled throughput vs shard count "
              "(%s)\n", smoke ? "smoke" : "full");

  const BenchData bench = make_sift_bench(scale);
  const IvfPqIndex index = build_index(bench, nlist);

  DrimEngineOptions opts = default_engine_options(scale, nprobe);
  opts.platform = PimPlatformKind::kAnalytic;  // paper-scale shard counts
  opts.batch_size = batch;

  // Zipf-skewed draws concentrate probes on hot clusters — the regime the
  // inter-shard replication machinery targets.
  serve::WorkloadParams wp;
  wp.num_requests = num_requests;
  wp.query_skew = 1.0;
  wp.k_choices = {static_cast<std::uint32_t>(scale.k)};
  wp.nprobe_choices = {static_cast<std::uint32_t>(nprobe)};
  const std::vector<serve::Request> requests =
      serve::generate_workload(bench.data.queries.count(), wp);

  // Per-request ground truth for recall (requests repeat pool queries).
  std::vector<std::vector<Neighbor>> gt;
  gt.reserve(requests.size());
  for (const serve::Request& r : requests) {
    gt.push_back(bench.ground_truth[r.query]);
  }

  std::printf("N=%zu, nlist=%zu, %zu DPUs/shard, nprobe=%zu, k=%zu, "
              "%zu Zipf(%.1f) requests in batches of %zu, replication %.2f\n",
              scale.num_base, nlist, scale.num_dpus, nprobe, scale.k,
              requests.size(), wp.query_skew, batch, replication);

  BenchReport report("shard_scaling");
  report.set_config("mode", smoke ? std::string("smoke") : std::string("full"));
  report.set_config("num_base", scale.num_base);
  report.set_config("nlist", nlist);
  report.set_config("dpus_per_shard", scale.num_dpus);
  report.set_config("nprobe", nprobe);
  report.set_config("k", scale.k);
  report.set_config("requests", requests.size());
  report.set_config("query_skew", wp.query_skew);
  report.set_config("replication_fraction", replication);

  bool ok = true;

  // Plain single-backend baseline: the bit-identity reference for shards=1.
  DrimBackend plain(index, bench.data.learn, opts);
  const StreamRun base_run =
      stream_requests(plain, bench.data.queries, requests, scale.k, nprobe, batch);
  const double base_recall = mean_recall_at_k(base_run.results, gt, scale.k);
  std::printf("\nplain %-22s %10.1f qps  total %8.3f ms  recall %.4f\n",
              plain.name().c_str(), base_run.qps, base_run.total_seconds * 1e3,
              base_recall);

  print_title("Modeled throughput vs shard count");
  std::printf("%7s | %12s | %9s | %8s | %s\n", "shards", "qps", "speedup",
              "recall", "per-shard tasks");
  print_rule(78);

  double qps1 = 0.0;
  std::vector<double> speedups;
  for (std::size_t S : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    cluster::ClusterOptions copts;
    copts.num_shards = S;
    copts.replication_fraction = replication;
    std::unique_ptr<AnnBackend> backend = cluster::make_cluster_backend(
        BackendKind::kDrim, index, bench.data.learn, opts, copts);
    const StreamRun run = stream_requests(*backend, bench.data.queries, requests,
                                          scale.k, nprobe, batch);
    const double recall = mean_recall_at_k(run.results, gt, scale.k);
    if (S == 1) qps1 = run.qps;
    const double speedup = qps1 > 0 ? run.qps / qps1 : 0.0;
    speedups.push_back(speedup);

    std::string tasks;
    for (const ShardHealth& h : run.health) {
      tasks += (tasks.empty() ? "" : " / ") + std::to_string(h.dispatched_tasks);
    }
    if (tasks.empty()) tasks = "-";
    std::printf("%7zu | %12.1f | %8.2fx | %8.4f | %s\n", S, run.qps, speedup,
                recall, tasks.c_str());

    report.add_row("shards " + std::to_string(S));
    report.add_metric("shards", static_cast<double>(S));
    report.add_metric("qps", run.qps);
    report.add_metric("speedup", speedup);
    report.add_metric("recall", recall);
    report.add_metric("total_seconds", run.total_seconds);

    // Results (hence recall) must be identical to the single-shard baseline
    // at every shard count — sharding moves work, never answers.
    ok = identical_results(run.results, base_run.results,
                           ("shards=" + std::to_string(S)).c_str()) && ok;

    if (S == 1) {
      // The 1-shard cluster is a passthrough: bit-identical modeled times
      // too, step for step.
      bool times_ok = run.total_seconds == base_run.total_seconds &&
                      run.batch_seconds == base_run.batch_seconds;
      if (!times_ok) {
        std::printf("FAIL: 1-shard cluster modeled times diverge from the "
                    "plain backend (%.9g vs %.9g total)\n",
                    run.total_seconds, base_run.total_seconds);
      }
      ok = times_ok && ok;
    }
  }

  // Acceptance: horizontal scale-out pays — each shard adds its own DPU
  // array, so modeled qps must grow near-linearly minus balance losses.
  const double speedup2 = speedups.size() > 1 ? speedups[1] : 0.0;
  const double speedup4 = speedups.size() > 2 ? speedups[2] : 0.0;
  if (speedup2 < 1.5) {
    std::printf("FAIL: 2-shard speedup %.2fx < 1.5x\n", speedup2);
    ok = false;
  }
  if (speedup4 < 2.5) {
    std::printf("FAIL: 4-shard speedup %.2fx < 2.5x\n", speedup4);
    ok = false;
  }

  const std::string path = report.write();
  std::printf("\n%s. wrote %s\n", ok ? "OK" : "FAILED", path.c_str());
  return ok ? 0 : 1;
}
