// Ablation (extension): exact re-ranking on the host after the PIM merge.
// Fetch R > k candidates from the PIM, refine to top-k with true distances —
// trading host DRAM traffic for recall, so the DSE can choose a cheaper
// (M, CB) at the same accuracy constraint.

#include <cstdio>

#include "core/rerank.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

int main() {
  BenchScale scale;
  const BenchData bench = make_sift_bench(scale);
  const std::size_t nprobe = 16;

  print_title("Extension: PIM search + exact host re-ranking (nlist=128)");
  std::printf("%6s %8s | %9s %9s | %11s\n", "M", "fetch R", "R@10 raw",
              "R@10 rr", "DRIM QPS*");
  print_rule();

  for (std::size_t m : {16, 32}) {
    const IvfPqIndex index = build_index(bench, 128, m);
    DrimEngineOptions o = default_engine_options(scale, nprobe);
    DrimAnnEngine engine(index, bench.data.learn, o);

    for (std::size_t fetch : {10, 50, 100}) {
      DrimSearchStats stats;
      const auto raw = engine.search(bench.data.queries, fetch, nprobe, &stats);
      const double raw_recall =
          mean_recall_at_k(raw, bench.ground_truth, scale.k);
      const auto refined =
          rerank_exact_all(bench.data.base, bench.data.queries, raw, scale.k);
      const double rr_recall =
          mean_recall_at_k(refined, bench.ground_truth, scale.k);
      std::printf("%6zu %8zu | %9.3f %9.3f | %11.0f\n", m, fetch, raw_recall,
                  rr_recall, stats.qps());
    }
  }
  print_rule();
  std::printf("re-ranking lets M=16 codes (half the DC traffic and half the code\n"
              "footprint) reach the recall of raw M=32 — a knob the paper's DSE\n"
              "could fold into Eq. (13)\n");
  return 0;
}
