// Host-path wall-clock regression bench (PR 6): queries/sec of the pure
// host CPU IVF-PQ path — no PIM model in the loop — across the four
// {spawn, persistent} x {scalar, avx2} combinations, so the persistent
// work-stealing executor and the AVX2 kernel seam become regression-guarded
// first-class metrics alongside the modeled numbers.
//
// Each combination runs the identical CpuIvfPq::search_batch workload; the
// binary exits nonzero if any combination's search results differ from the
// spawn+scalar reference in any bit (the scalar/AVX2 equality contract and
// the executor's fixed-order merges, end to end). `--check-against FILE`
// compares the best combination's qps to a previously written
// BENCH_host_path.json and fails on a >15% regression. Writes
// BENCH_host_path.json.
//
// Full scale is the paper-style host config (nlist 1024, m 16, cb 256,
// k 100); `--smoke` shrinks the corpus for ctest/CI.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/distances.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

struct Combo {
  const char* label;
  ParallelMode mode;
  SimdLevel simd;
};

using Results = std::vector<std::vector<Neighbor>>;

bool identical(const Results& a, const Results& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].dist != b[q][i].dist) return false;
    }
  }
  return true;
}

/// Best-of-N timed run of the full batch (min wall — the standard way to
/// strip scheduler noise from a throughput number).
double best_wall(const CpuIvfPq& searcher, const FloatMatrix& queries,
                 std::size_t k, std::size_t nprobe, int reps, Results* out) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    CpuSearchStats stats;
    Results res = searcher.search_batch(queries, k, nprobe, &stats);
    if (r == 0 && out != nullptr) *out = std::move(res);
    if (best == 0.0 || stats.wall_seconds < best) best = stats.wall_seconds;
  }
  return best;
}

/// Pull `metric` out of the row labeled `label` in a BENCH_host_path.json
/// written by BenchReport (single-line row objects; no general JSON needed).
double read_baseline_metric(const std::string& path, const std::string& label,
                            const std::string& metric) {
  std::ifstream in(path);
  if (!in) return -1.0;
  std::string line;
  const std::string label_needle = "\"label\": \"" + label + "\"";
  const std::string metric_needle = "\"" + metric + "\": ";
  while (std::getline(in, line)) {
    if (line.find(label_needle) == std::string::npos) continue;
    const std::size_t at = line.find(metric_needle);
    if (at == std::string::npos) return -1.0;
    return std::atof(line.c_str() + at + metric_needle.size());
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t threads = 0;
  std::string check_against;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--check-against") == 0 && i + 1 < argc) {
      check_against = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads N] [--check-against FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  BenchScale scale;
  std::size_t nlist = 1024, nprobe = 64;
  const std::size_t m = 16, cb = 256, k = 100;
  if (smoke) {
    scale.num_base = 20'000;
    scale.num_queries = 48;
    scale.num_learn = 4'000;
    nlist = 128;
    nprobe = 16;
  }
  const std::size_t effective_threads = configure_host_threads(threads);

  print_title("host_path: wall-clock qps of the pure host CPU IVF-PQ path");
  std::printf("scale: base=%zu queries=%zu nlist=%zu m=%zu cb=%zu k=%zu "
              "nprobe=%zu threads=%zu avx2=%s\n",
              scale.num_base, scale.num_queries, nlist, m, cb, k, nprobe,
              effective_threads, avx2_available() ? "yes" : "no");

  const BenchData bench = make_sift_bench(scale);
  const IvfPqIndex index = build_index(bench, nlist, m, cb);
  const CpuIvfPq searcher(index);
  const int reps = smoke ? 2 : 3;

  BenchReport report("host_path");
  report.set_config("num_base", scale.num_base);
  report.set_config("num_queries", scale.num_queries);
  report.set_config("nlist", nlist);
  report.set_config("m", m);
  report.set_config("cb", cb);
  report.set_config("k", k);
  report.set_config("nprobe", nprobe);
  report.set_config("threads", effective_threads);
  report.set_config("smoke", std::string(smoke ? "true" : "false"));
  report.set_config("avx2_available", std::string(avx2_available() ? "true" : "false"));

  const Combo combos[] = {
      {"spawn_scalar", ParallelMode::kSpawn, SimdLevel::kScalar},
      {"spawn_avx2", ParallelMode::kSpawn, SimdLevel::kAvx2},
      {"persistent_scalar", ParallelMode::kPersistent, SimdLevel::kScalar},
      {"persistent_avx2", ParallelMode::kPersistent, SimdLevel::kAvx2},
  };

  std::printf("\n%-20s %12s %12s %10s\n", "combo", "wall [s]", "qps",
              "vs spawn_scalar");
  print_rule();

  Results reference;
  double base_qps = 0.0, best_qps = 0.0;
  int rc = 0;
  for (const Combo& combo : combos) {
    set_parallel_mode(combo.mode);
    const SimdLevel got = set_simd_level(combo.simd);
    if (combo.simd == SimdLevel::kAvx2 && got != SimdLevel::kAvx2) {
      std::printf("%-20s %12s\n", combo.label, "(no AVX2)");
      continue;
    }
    // Warmup outside the timed reps (page-in, pool spin-up).
    best_wall(searcher, bench.data.queries, k, nprobe, 1, nullptr);
    Results results;
    const double wall =
        best_wall(searcher, bench.data.queries, k, nprobe, reps, &results);
    const double qps = wall > 0 ? static_cast<double>(scale.num_queries) / wall : 0.0;

    if (reference.empty()) {
      reference = std::move(results);
      base_qps = qps;
    } else if (!identical(results, reference)) {
      std::fprintf(stderr, "FAIL: %s results differ from spawn_scalar\n",
                   combo.label);
      rc = 1;
    }
    best_qps = std::max(best_qps, qps);
    const double speedup = base_qps > 0 ? qps / base_qps : 0.0;
    std::printf("%-20s %12.4f %12.1f %9.2fx\n", combo.label, wall, qps, speedup);

    report.add_row(combo.label);
    report.add_metric("wall_seconds", wall);
    report.add_metric("qps", qps);
    report.add_metric("speedup_vs_spawn_scalar", speedup);
  }
  set_parallel_mode(ParallelMode::kPersistent);
  set_simd_level(avx2_available() ? SimdLevel::kAvx2 : SimdLevel::kScalar);

  report.add_row("summary");
  report.add_metric("best_qps", best_qps);
  report.add_metric("best_speedup_vs_spawn_scalar",
                    base_qps > 0 ? best_qps / base_qps : 0.0);
  report.write();

  if (rc == 0) {
    std::printf("\nok: all combinations bit-identical; best %.2fx vs "
                "spawn+scalar\n",
                base_qps > 0 ? best_qps / base_qps : 0.0);
  }

  if (!check_against.empty()) {
    const double baseline = read_baseline_metric(check_against, "summary", "best_qps");
    if (baseline <= 0.0) {
      std::fprintf(stderr, "FAIL: could not read best_qps from %s\n",
                   check_against.c_str());
      return 1;
    }
    const double floor = 0.85 * baseline;
    std::printf("regression gate: best_qps %.1f vs baseline %.1f (floor %.1f)\n",
                best_qps, baseline, floor);
    if (best_qps < floor) {
      std::fprintf(stderr,
                   "FAIL: host-path qps regressed >15%% (%.1f < %.1f)\n",
                   best_qps, floor);
      return 1;
    }
  }
  return rc;
}
