// Figure 8 reproduction: PIM kernel latency breakdown by phase (RC / LC /
// DC / TS / AUX) as nlist and nprobe sweep. The paper's findings:
//   - DC's share falls and LC/TS's share rises as nlist grows (smaller
//     clusters mean less scanning per (q, c) pair but the same LUT work),
//   - shares barely move with nprobe (all DPU phases scale linearly in it),
//   - RC and AUX stay small throughout,
//   - the bottleneck shifts DC -> LC with growing nlist.

#include <cstdio>

#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

void run_row(const BenchData& bench, const BenchScale& scale, std::size_t nlist,
             std::size_t nprobe) {
  const IvfPqIndex index = build_index(bench, nlist);
  const DrimRun drim =
      run_drim(bench, index, default_engine_options(scale, nprobe), scale.k, nprobe);

  double total = 0.0;
  for (double s : drim.stats.phase_dpu_seconds) total += s;
  auto share = [&](Phase p) {
    return total > 0 ? 100.0 * drim.stats.phase_dpu_seconds[static_cast<int>(p)] / total
                     : 0.0;
  };
  std::printf("%6zu %7zu | %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% | %9.4f s | %8.3f s\n",
              nlist, nprobe, share(Phase::RC), share(Phase::LC), share(Phase::DC),
              share(Phase::TS), share(Phase::AUX), drim.stats.dpu_busy_seconds,
              drim.wall_seconds);
}

void header() {
  std::printf("%6s %7s | %7s %7s %7s %7s %7s | %10s | %9s\n", "nlist", "nprobe", "RC",
              "LC", "DC", "TS", "AUX", "DPU busy", "host wall");
  print_rule();
}

}  // namespace

int main() {
  BenchScale scale;
  std::printf("Fig. 8 — DPU kernel latency breakdown (simulated cycle counters)\n");
  std::printf("host simulation threads: %zu (set DRIM_THREADS to change; "
              "simulated columns are thread-count invariant)\n",
              configure_host_threads(scale.threads));

  const BenchData bench = make_sift_bench(scale);

  print_title("Fig. 8(a): sweep nlist, nprobe = 16");
  header();
  for (std::size_t nlist : {32, 64, 128, 256}) {
    run_row(bench, scale, nlist, 16);
  }
  std::printf("expected: DC share falls / LC share rises with nlist "
              "(bottleneck shifts DC -> LC)\n");

  print_title("Fig. 8(b): sweep nprobe, nlist = 128");
  header();
  for (std::size_t nprobe : {8, 16, 24, 32}) {
    run_row(bench, scale, 128, nprobe);
  }
  std::printf("expected: shares approximately stable in nprobe; RC and AUX small\n");
  return 0;
}
