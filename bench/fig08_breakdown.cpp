// Figure 8 reproduction: PIM kernel latency breakdown by phase (RC / LC /
// DC / TS / AUX) as nlist and nprobe sweep. The paper's findings:
//   - DC's share falls and LC/TS's share rises as nlist grows (smaller
//     clusters mean less scanning per (q, c) pair but the same LUT work),
//   - shares barely move with nprobe (all DPU phases scale linearly in it),
//   - RC and AUX stay small throughout,
//   - the bottleneck shifts DC -> LC with growing nlist.
//
// The per-phase seconds are read two independent ways and cross-checked:
// the engine's accumulated phase_dpu_seconds (per-DPU max(compute, dma)
// summed as batches run), and a re-derivation from the raw aggregate
// hardware counters (instr cycles / IPC and DMA cycles / frequency, like
// the UPMEM SDK's perf counters). The two must agree within 1% — the
// aggregate max can only under-count when DPUs in the same phase sit on
// opposite sides of the compute/DMA crossover, which a homogeneous kernel
// mix keeps negligible. `--smoke` shrinks the sweeps for ctest and turns
// the 1% check into the exit status. Writes BENCH_fig08_breakdown.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

/// Phase seconds re-derived from the aggregate counters alone.
double counter_phase_seconds(const PhaseCounters& c, const PimConfig& cfg) {
  const double compute = static_cast<double>(c.instr_cycles) /
                         cfg.effective_ipc() * cfg.seconds_per_cycle();
  const double dma = c.dma_cycles / cfg.frequency_hz;
  return std::max(compute, dma);
}

/// Largest relative per-phase gap between the engine's accounting and the
/// counter-derived times for one run (0 when both report an empty phase).
double run_row(const BenchData& bench, const BenchScale& scale, std::size_t nlist,
               std::size_t nprobe, BenchReport& report) {
  const IvfPqIndex index = build_index(bench, nlist);
  const DrimEngineOptions options = default_engine_options(scale, nprobe);
  const DrimRun drim = run_drim(bench, index, options, scale.k, nprobe);

  double total = 0.0;
  double derived_total = 0.0;
  double max_dev = 0.0;
  std::array<double, kNumPhases> derived{};
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const double engine_s = drim.stats.phase_dpu_seconds[p];
    derived[p] = counter_phase_seconds(drim.stats.counters.phases[p], options.pim);
    total += engine_s;
    derived_total += derived[p];
    if (engine_s > 0.0 || derived[p] > 0.0) {
      const double ref = std::max(engine_s, derived[p]);
      max_dev = std::max(max_dev, std::abs(engine_s - derived[p]) / ref);
    }
  }
  auto share = [&](Phase p) {
    return total > 0 ? 100.0 * drim.stats.phase_dpu_seconds[static_cast<int>(p)] / total
                     : 0.0;
  };
  std::printf("%6zu %7zu | %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% | %9.4f s "
              "| %9.4f s | %6.3f%%\n",
              nlist, nprobe, share(Phase::RC), share(Phase::LC), share(Phase::DC),
              share(Phase::TS), share(Phase::AUX), total, derived_total,
              100.0 * max_dev);

  char label[64];
  std::snprintf(label, sizeof(label), "nlist=%zu nprobe=%zu", nlist, nprobe);
  report.add_row(label);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const std::string name(phase_name(static_cast<Phase>(p)));
    report.add_metric("engine_" + name + "_s", drim.stats.phase_dpu_seconds[p]);
    report.add_metric("counter_" + name + "_s", derived[p]);
  }
  report.add_metric("max_phase_deviation", max_dev);
  report.add_metric("dpu_busy_seconds", drim.stats.dpu_busy_seconds);
  return max_dev;
}

void header() {
  std::printf("%6s %7s | %7s %7s %7s %7s %7s | %10s | %10s | %7s\n", "nlist",
              "nprobe", "RC", "LC", "DC", "TS", "AUX", "phase sum", "counters",
              "max dev");
  print_rule(88);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  BenchScale scale;
  if (smoke) {
    scale.num_base = 20'000;
    scale.num_queries = 48;
    scale.num_learn = 4'000;
    scale.num_dpus = 16;
  }
  std::printf("Fig. 8 — DPU kernel latency breakdown (simulated cycle counters)\n");
  std::printf("host simulation threads: %zu (set DRIM_THREADS to change; "
              "simulated columns are thread-count invariant)\n",
              configure_host_threads(scale.threads));

  BenchReport report("fig08_breakdown");
  report.set_config("mode", smoke ? std::string("smoke") : std::string("full"));
  report.set_config("num_base", scale.num_base);
  report.set_config("num_dpus", scale.num_dpus);

  const BenchData bench = make_sift_bench(scale);
  const auto nlists = smoke ? std::vector<std::size_t>{32, 64}
                            : std::vector<std::size_t>{32, 64, 128, 256};
  const auto nprobes = smoke ? std::vector<std::size_t>{8, 16}
                             : std::vector<std::size_t>{8, 16, 24, 32};

  double worst_dev = 0.0;
  print_title("Fig. 8(a): sweep nlist, nprobe = 16");
  header();
  for (std::size_t nlist : nlists) {
    worst_dev = std::max(worst_dev, run_row(bench, scale, nlist, 16, report));
  }
  std::printf("expected: DC share falls / LC share rises with nlist "
              "(bottleneck shifts DC -> LC)\n");

  print_title("Fig. 8(b): sweep nprobe, nlist = 128");
  header();
  for (std::size_t nprobe : nprobes) {
    worst_dev = std::max(worst_dev, run_row(bench, scale, 128, nprobe, report));
  }
  std::printf("expected: shares approximately stable in nprobe; RC and AUX small\n");

  report.set_config("worst_phase_deviation", worst_dev);
  report.write();

  std::printf("cross-check: engine accounting vs raw counters, worst phase "
              "deviation %.4f%% (budget 1%%)\n",
              100.0 * worst_dev);
  if (worst_dev > 0.01) {
    std::printf("FAIL: counter-derived breakdown drifted past 1%%\n");
    return 1;
  }
  return 0;
}
