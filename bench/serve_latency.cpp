// Online serving benchmark: tail latency and goodput vs offered load.
//
// Builds the SIFT-like index, calibrates the backend's batch service rate
// with a streaming warm-up sweep (enqueue the query pool, step it through in
// serve-sized batches), then replays open-loop Poisson traces at multiples of
// that capacity through the serving runtime (dynamic batching + admission
// control). The left table (admission off) shows the classic open-loop
// saturation curve: p99 rises sharply once offered load passes the service
// capacity. The right table (admission on) shows load shedding holding
// goodput near peak instead of collapsing.
//
// `--backend {drim,cpu}` and `--platform {sim,analytic}` pick the search
// stack; every combination runs the same runtime and trace generator.
// `--pipeline-depth D` sets the engine's in-flight step window for the
// saturation sweep (default 1 = serial, matching the classic open-loop
// curve; the p99-monotonicity self-check only applies there, since a deeper
// pipeline legitimately flattens the latency/load curve near capacity). A
// separate depth-sweep section always compares the depth-1 and depth-2
// backend totals on a transfer-heavy streaming run and records the speedup.
// On the unsharded drim backend, an adaptive-precision section additionally
// compares shed-only vs degrade-to-q4 admission at the overload point on a
// ladder-enabled engine (recall-vs-goodput: see bench/precision_ladder).
// `--shards N` (with `--shard-replication F`) serves from an N-shard cluster
// tier (drim backend only): the whole sweep runs unchanged behind the
// ShardRouter, so saturation and admission behavior are directly comparable
// against the single-node run.
// `--smoke` shrinks the corpus and trace so the run finishes in seconds and
// self-checks invariants; ctest runs it under the `serve` label on the cpu
// backend and both drim platforms. Writes BENCH_serve_latency.json.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "backend/backend_factory.hpp"
#include "cluster/cluster_backend.hpp"
#include "common/stats.hpp"
#include "serve/runtime.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;
using namespace drim::serve;

namespace {

struct LoadPoint {
  double multiplier = 0.0;
  ServeReport report;
};

void print_report_row(double mult, double offered_qps, const ServeReport& r) {
  std::printf("%5.2fx %9.0f | %6zu %6zu %5.1f%% | %8.3f %8.3f %8.3f | %9.0f %7.1f%%\n",
              mult, offered_qps, r.served, r.shed, 100.0 * r.shed_rate, r.p50_ms,
              r.p95_ms, r.p99_ms, r.goodput_qps, 100.0 * r.timeout_rate);
}

void print_header() {
  std::printf("%5s %9s | %6s %6s %6s | %8s %8s %8s | %9s %8s\n", "load",
              "offered", "served", "shed", "shed%", "p50 ms", "p95 ms", "p99 ms",
              "goodput", "timeout%");
  print_rule(92);
}

void add_report_metrics(BenchReport& report, const ServeReport& r, double offered_qps) {
  report.add_metric("offered_qps", offered_qps);
  report.add_metric("served", static_cast<double>(r.served));
  report.add_metric("shed", static_cast<double>(r.shed));
  report.add_metric("p50_ms", r.p50_ms);
  report.add_metric("p95_ms", r.p95_ms);
  report.add_metric("p99_ms", r.p99_ms);
  report.add_metric("goodput_qps", r.goodput_qps);
  report.add_metric("timeout_rate", r.timeout_rate);
}

/// Calibrate the service rate through the streaming API: enqueue the whole
/// pool, step it through in serve-sized batches (flushing the tail), and take
/// the mean modeled batch time. Exercises the same enqueue/step path the
/// runtime drives, on any backend.
double calibrate_batch_seconds(AnnBackend& backend, const FloatMatrix& pool,
                               std::size_t k, std::size_t nprobe,
                               std::size_t batch) {
  backend.reset_stream();
  std::vector<std::uint32_t> handles;
  handles.reserve(pool.count());
  for (std::size_t q = 0; q < pool.count(); ++q) {
    handles.push_back(backend.enqueue(pool.row(q), k, nprobe));
  }
  std::size_t stepped = 0;
  while (stepped < pool.count()) {
    const std::size_t take = std::min(batch, pool.count() - stepped);
    backend.step(take, /*flush=*/stepped + take == pool.count());
    stepped += take;
  }
  while (backend.has_deferred()) backend.step(0, /*flush=*/true);
  for (std::uint32_t h : handles) (void)backend.take_results(h);
  const double mean_s = mean(backend.stats().batch_seconds);
  backend.reset_stream();
  return mean_s;
}

/// Stream the whole pool through the step API in small batches and return the
/// backend's modeled total (the pipelined makespan at depth >= 2, the stage
/// sum at depth 1). Small batches make the run transfer-heavy — many steps
/// whose host-link transfers a deeper pipeline can overlap with compute.
double stream_total_seconds(AnnBackend& backend, const FloatMatrix& pool,
                            std::size_t k, std::size_t nprobe, std::size_t batch) {
  backend.reset_stream();
  std::vector<std::uint32_t> handles;
  handles.reserve(pool.count());
  for (std::size_t q = 0; q < pool.count(); ++q) {
    handles.push_back(backend.enqueue(pool.row(q), k, nprobe));
  }
  std::size_t stepped = 0;
  while (stepped < pool.count()) {
    const std::size_t take = std::min(batch, pool.count() - stepped);
    backend.step(take, /*flush=*/stepped + take == pool.count());
    stepped += take;
  }
  while (backend.has_deferred()) backend.step(0, /*flush=*/true);
  for (std::uint32_t h : handles) (void)backend.take_results(h);
  const double total_s = backend.stats().total_seconds;
  backend.reset_stream();
  return total_s;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t num_requests = 2048;
  std::size_t pipeline_depth = 1;
  std::size_t num_shards = 1;
  double shard_replication = 0.10;
  BackendKind backend_kind = BackendKind::kDrim;
  PimPlatformKind platform = PimPlatformKind::kSim;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      num_requests = std::strtoul(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--pipeline-depth") == 0 && i + 1 < argc) {
      pipeline_depth = std::strtoul(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backend_kind = parse_backend_kind(argv[++i]);
    }
    if (std::strcmp(argv[i], "--platform") == 0 && i + 1 < argc) {
      platform = parse_pim_platform(argv[++i]);
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      num_shards = std::strtoul(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--shard-replication") == 0 && i + 1 < argc) {
      shard_replication = std::strtod(argv[++i], nullptr);
    }
  }

  BenchScale scale;
  std::size_t nlist = 128;
  if (smoke) {
    scale.num_base = 20'000;
    scale.num_queries = 64;
    scale.num_learn = 4'000;
    scale.num_dpus = 16;
    nlist = 32;
    num_requests = 512;
  }
  const std::size_t nprobe = 16;
  configure_host_threads(scale.threads);

  ServeParams sp;
  sp.batcher.max_batch = 32;

  DrimEngineOptions opts = default_engine_options(scale, nprobe);
  opts.batch_size = sp.batcher.max_batch;  // calibration uses serve batches
  opts.platform = platform;
  opts.pipeline_depth = pipeline_depth;
  CpuBackendOptions cpu_opts;
  cpu_opts.platform = scaled_cpu_platform(scale.num_dpus);
  cpu_opts.pipeline_depth = pipeline_depth;

  std::printf("serve_latency — open-loop tail latency vs offered load (%s)\n",
              smoke ? "smoke" : "full");

  const BenchData bench = make_sift_bench(scale);
  const IvfPqIndex index = build_index(bench, nlist);
  std::unique_ptr<AnnBackend> backend;
  if (num_shards > 1) {
    // Cluster tier: the sweep runs unchanged over the router (routed steps
    // are cross-shard barriers, so the pipelined depth applies per shard).
    cluster::ClusterOptions copts;
    copts.num_shards = num_shards;
    copts.replication_fraction = shard_replication;
    backend = cluster::make_cluster_backend(backend_kind, index, bench.data.learn,
                                            opts, copts, cpu_opts);
  } else {
    backend = make_backend(backend_kind, index, bench.data.learn, opts, cpu_opts);
  }

  std::printf("backend=%s, N=%zu, pool=%zu queries, %zu DPUs, nlist=%zu, "
              "nprobe=%zu, k=%zu, %zu requests per point\n",
              backend->name().c_str(), scale.num_base, scale.num_queries,
              scale.num_dpus, nlist, nprobe, scale.k, num_requests);

  // Calibrate capacity through the streaming step API at the serving batch
  // size: the mean modeled batch time sets the service rate the sweep is
  // scaled to.
  const double mean_batch_s = calibrate_batch_seconds(
      *backend, bench.data.queries, scale.k, nprobe, sp.batcher.max_batch);
  const double capacity_qps =
      static_cast<double>(sp.batcher.max_batch) / mean_batch_s;
  // The batcher may wait one batch time to fill (cheap when a batch costs
  // that long anyway); the SLO allows that wait plus a few batches of queue.
  sp.batcher.max_wait_s = mean_batch_s;
  sp.admission.slo_s = sp.batcher.max_wait_s + 6.0 * mean_batch_s;
  // Shed conservatively: the queue-delay predictor can't see batch-time
  // variance or a deferral's extra step, so admitting right up to the SLO
  // line would let much of the queue finish just past it.
  sp.admission.headroom = 0.6;
  sp.flush_every = 2;  // bound filter deferral to one extra step
  std::printf("calibrated: mean batch %.3f ms -> capacity ~%.0f qps, "
              "max wait %.3f ms, SLO %.3f ms\n",
              mean_batch_s * 1e3, capacity_qps, sp.batcher.max_wait_s * 1e3,
              sp.admission.slo_s * 1e3);

  BenchReport report("serve_latency");
  report.set_config("mode", smoke ? std::string("smoke") : std::string("full"));
  report.set_config("backend", backend->name());
  report.set_config("num_base", scale.num_base);
  report.set_config("num_dpus", scale.num_dpus);
  report.set_config("nlist", nlist);
  report.set_config("nprobe", nprobe);
  report.set_config("k", scale.k);
  report.set_config("requests_per_point", num_requests);
  report.set_config("max_batch", sp.batcher.max_batch);
  report.set_config("mean_batch_s", mean_batch_s);
  report.set_config("capacity_qps", capacity_qps);

  ServingRuntime runtime(*backend, bench.data.queries, sp);

  WorkloadParams wp;
  wp.num_requests = num_requests;
  wp.query_skew = 0.5;
  wp.k_choices = {static_cast<std::uint32_t>(scale.k)};
  wp.nprobe_choices = {static_cast<std::uint32_t>(nprobe)};

  const std::vector<double> multipliers =
      smoke ? std::vector<double>{0.5, 1.5}
            : std::vector<double>{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0};

  bool ok = true;
  double prev_p99 = 0.0;
  std::vector<LoadPoint> no_admit;

  print_title("Open loop, admission OFF — saturation curve");
  print_header();
  for (double mult : multipliers) {
    wp.offered_qps = mult * capacity_qps;
    const std::vector<Request> trace =
        generate_workload(bench.data.queries.count(), wp);
    ServeParams p = sp;
    p.admission.enabled = false;
    ServeResult res = ServingRuntime(*backend, bench.data.queries, p).run(trace);
    print_report_row(mult, wp.offered_qps, res.report);
    no_admit.push_back({mult, res.report});
    char label[64];
    std::snprintf(label, sizeof(label), "no_admission x%.2f", mult);
    report.add_row(label);
    add_report_metrics(report, res.report, wp.offered_qps);
    ok = ok && res.report.served + res.report.shed == res.report.offered;
    ok = ok && res.report.shed == 0;  // admission off never sheds
    // Acceptance: latency is monotone in offered load (small tolerance for
    // batching artifacts at low load). Serial only — a deeper pipeline
    // overlaps transfers with compute and legitimately flattens the curve.
    if (pipeline_depth <= 1) {
      ok = ok && res.report.p99_ms >= prev_p99 * 0.95;
    }
    prev_p99 = res.report.p99_ms;
  }

  print_title("Open loop, admission ON — shedding holds goodput");
  print_header();
  double peak_goodput = 0.0;
  double overload_goodput = 0.0;
  for (double mult : multipliers) {
    wp.offered_qps = mult * capacity_qps;
    const std::vector<Request> trace =
        generate_workload(bench.data.queries.count(), wp);
    ServeResult res = runtime.run(trace);
    print_report_row(mult, wp.offered_qps, res.report);
    char label[64];
    std::snprintf(label, sizeof(label), "admission x%.2f", mult);
    report.add_row(label);
    add_report_metrics(report, res.report, wp.offered_qps);
    ok = ok && res.report.served + res.report.shed == res.report.offered;
    peak_goodput = std::max(peak_goodput, res.report.goodput_qps);
    if (mult == multipliers.back()) overload_goodput = res.report.goodput_qps;
  }

  print_rule(92);
  std::printf("admission at %.2fx overload keeps goodput at %.0f/%.0f qps "
              "(%.0f%% of peak)\n",
              multipliers.back(), overload_goodput, peak_goodput,
              peak_goodput > 0 ? 100.0 * overload_goodput / peak_goodput : 0.0);
  // Acceptance: shedding keeps goodput within 10% of the sweep's peak even
  // past saturation.
  ok = ok && overload_goodput >= 0.9 * peak_goodput;

  // Adaptive precision at the overload point: on a ladder-enabled backend
  // (drim only — the cpu baseline has no ladder and would silently ignore
  // the rung), degrade-before-shed admission serves predicted SLO violators
  // on the q4 rung instead of rejecting them. Recall-vs-goodput: degraded
  // requests trade recall for staying admitted, so goodput can only improve.
  if (backend_kind == BackendKind::kDrim && num_shards == 1) {
    print_title("Adaptive precision — degrade-to-q4 vs shed-only at overload");
    DrimEngineOptions l_opts = opts;
    l_opts.enable_q4 = true;
    std::unique_ptr<AnnBackend> ladder =
        make_backend(backend_kind, index, bench.data.learn, l_opts, cpu_opts);
    wp.offered_qps = multipliers.back() * capacity_qps;
    const std::vector<Request> trace =
        generate_workload(bench.data.queries.count(), wp);
    std::printf("%10s | %6s %6s %8s | %9s | %8s\n", "policy", "served", "shed",
                "degraded", "goodput", "timeout%");
    print_rule(64);
    double shed_goodput = 0.0, degrade_goodput = 0.0;
    for (const bool degrade : {false, true}) {
      ServeParams p = sp;
      p.admission.degrade_to_q4 = degrade;
      ServeResult res = ServingRuntime(*ladder, bench.data.queries, p).run(trace);
      std::printf("%10s | %6zu %6zu %8zu | %9.0f | %7.1f%%\n",
                  degrade ? "degrade" : "shed-only", res.report.served,
                  res.report.shed, res.report.degraded, res.report.goodput_qps,
                  100.0 * res.report.timeout_rate);
      report.add_row(degrade ? "adaptive_degrade" : "adaptive_shed_only");
      add_report_metrics(report, res.report, wp.offered_qps);
      report.add_metric("degraded", static_cast<double>(res.report.degraded));
      ok = ok && res.report.served + res.report.shed == res.report.offered;
      (degrade ? degrade_goodput : shed_goodput) = res.report.goodput_qps;
    }
    // Acceptance: degrading instead of shedding never loses goodput.
    ok = ok && degrade_goodput >= shed_goodput;
  }

  print_title("Pipelined execution — depth sweep (streaming, small batches)");
  std::printf("%6s | %12s | %8s\n", "depth", "total ms", "speedup");
  print_rule(34);
  // Transfer-heavy streaming run: small step batches mean many host-link
  // transfers for a deeper pipeline to hide behind DPU compute.
  const std::size_t sweep_batch = 8;
  double serial_total_s = 0.0;
  double depth2_total_s = 0.0;
  for (std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
    DrimEngineOptions d_opts = opts;
    d_opts.batch_size = sweep_batch;
    d_opts.pipeline_depth = depth;
    CpuBackendOptions d_cpu = cpu_opts;
    d_cpu.pipeline_depth = depth;
    std::unique_ptr<AnnBackend> swept =
        make_backend(backend_kind, index, bench.data.learn, d_opts, d_cpu);
    const double total_s = stream_total_seconds(*swept, bench.data.queries,
                                                scale.k, nprobe, sweep_batch);
    if (depth == 1) serial_total_s = total_s;
    if (depth == 2) depth2_total_s = total_s;
    std::printf("%6zu | %12.3f | %7.2fx\n", depth, total_s * 1e3,
                total_s > 0.0 ? serial_total_s / total_s : 1.0);
  }
  const double pipeline_speedup =
      depth2_total_s > 0.0 ? serial_total_s / depth2_total_s : 1.0;
  report.add_row("pipeline_depth_sweep");
  report.add_metric("serial_total_s", serial_total_s);
  report.add_metric("depth2_total_s", depth2_total_s);
  report.add_metric("pipeline_speedup", pipeline_speedup);
  std::printf("depth-2 pipelining: %.2fx over serial on the streaming run\n",
              pipeline_speedup);
  // Acceptance: overlap can only help the modeled makespan (the CPU backend
  // has no separable transfer stage, so there the totals are just equal).
  ok = ok && depth2_total_s <= serial_total_s * (1.0 + 1e-9);

  report.write();
  if (!ok) {
    std::printf("FAILED: serving invariants violated (see rows above)\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
