// Online serving benchmark: tail latency and goodput vs offered load.
//
// Builds the SIFT-like index, calibrates the engine's batch service rate from
// one closed-loop search, then replays open-loop Poisson traces at multiples
// of that capacity through the serving runtime (dynamic batching + admission
// control). The left table (admission off) shows the classic open-loop
// saturation curve: p99 rises sharply once offered load passes the service
// capacity. The right table (admission on) shows load shedding holding
// goodput near peak instead of collapsing.
//
// `--smoke` shrinks the corpus and trace so the run finishes in seconds and
// self-checks invariants; ctest runs it under the `serve` label.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "serve/runtime.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;
using namespace drim::serve;

namespace {

struct LoadPoint {
  double multiplier = 0.0;
  ServeReport report;
};

void print_report_row(double mult, double offered_qps, const ServeReport& r) {
  std::printf("%5.2fx %9.0f | %6zu %6zu %5.1f%% | %8.3f %8.3f %8.3f | %9.0f %7.1f%%\n",
              mult, offered_qps, r.served, r.shed, 100.0 * r.shed_rate, r.p50_ms,
              r.p95_ms, r.p99_ms, r.goodput_qps, 100.0 * r.timeout_rate);
}

void print_header() {
  std::printf("%5s %9s | %6s %6s %6s | %8s %8s %8s | %9s %8s\n", "load",
              "offered", "served", "shed", "shed%", "p50 ms", "p95 ms", "p99 ms",
              "goodput", "timeout%");
  print_rule(92);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t num_requests = 2048;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      num_requests = std::strtoul(argv[++i], nullptr, 10);
    }
  }

  BenchScale scale;
  std::size_t nlist = 128;
  if (smoke) {
    scale.num_base = 20'000;
    scale.num_queries = 64;
    scale.num_learn = 4'000;
    scale.num_dpus = 16;
    nlist = 32;
    num_requests = 512;
  }
  const std::size_t nprobe = 16;
  configure_host_threads(scale.threads);

  std::printf("serve_latency — open-loop tail latency vs offered load (%s)\n",
              smoke ? "smoke" : "full");
  std::printf("N=%zu, pool=%zu queries, %zu DPUs, nlist=%zu, nprobe=%zu, k=%zu, "
              "%zu requests per point\n",
              scale.num_base, scale.num_queries, scale.num_dpus, nlist, nprobe,
              scale.k, num_requests);

  const BenchData bench = make_sift_bench(scale);
  const IvfPqIndex index = build_index(bench, nlist);

  ServeParams sp;
  sp.batcher.max_batch = 32;

  DrimEngineOptions opts = default_engine_options(scale, nprobe);
  opts.batch_size = sp.batcher.max_batch;  // calibration search uses serve batches
  DrimAnnEngine engine(index, bench.data.learn, opts);

  // Calibrate capacity from a closed-loop search at the serving batch size:
  // the mean modeled batch time sets the service rate the sweep is scaled to.
  DrimSearchStats cal;
  engine.search(bench.data.queries, scale.k, nprobe, &cal);
  const double mean_batch_s = mean(cal.batch_seconds);
  const double capacity_qps =
      static_cast<double>(sp.batcher.max_batch) / mean_batch_s;
  // The batcher may wait one batch time to fill (cheap when a batch costs
  // that long anyway); the SLO allows that wait plus a few batches of queue.
  sp.batcher.max_wait_s = mean_batch_s;
  sp.admission.slo_s = sp.batcher.max_wait_s + 6.0 * mean_batch_s;
  // Shed conservatively: the queue-delay predictor can't see batch-time
  // variance or a deferral's extra step, so admitting right up to the SLO
  // line would let much of the queue finish just past it.
  sp.admission.headroom = 0.6;
  sp.flush_every = 2;  // bound filter deferral to one extra step
  std::printf("calibrated: mean batch %.3f ms -> capacity ~%.0f qps, "
              "max wait %.3f ms, SLO %.3f ms\n",
              mean_batch_s * 1e3, capacity_qps, sp.batcher.max_wait_s * 1e3,
              sp.admission.slo_s * 1e3);

  ServingRuntime runtime(engine, bench.data.queries, sp);

  WorkloadParams wp;
  wp.num_requests = num_requests;
  wp.query_skew = 0.5;
  wp.k_choices = {static_cast<std::uint32_t>(scale.k)};
  wp.nprobe_choices = {static_cast<std::uint32_t>(nprobe)};

  const std::vector<double> multipliers =
      smoke ? std::vector<double>{0.5, 1.5}
            : std::vector<double>{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0};

  bool ok = true;
  double prev_p99 = 0.0;
  std::vector<LoadPoint> no_admit;

  print_title("Open loop, admission OFF — saturation curve");
  print_header();
  for (double mult : multipliers) {
    wp.offered_qps = mult * capacity_qps;
    const std::vector<Request> trace =
        generate_workload(bench.data.queries.count(), wp);
    ServeParams p = sp;
    p.admission.enabled = false;
    ServeResult res = ServingRuntime(engine, bench.data.queries, p).run(trace);
    print_report_row(mult, wp.offered_qps, res.report);
    no_admit.push_back({mult, res.report});
    ok = ok && res.report.served + res.report.shed == res.report.offered;
    ok = ok && res.report.shed == 0;  // admission off never sheds
    // Acceptance: latency is monotone in offered load (small tolerance for
    // batching artifacts at low load).
    ok = ok && res.report.p99_ms >= prev_p99 * 0.95;
    prev_p99 = res.report.p99_ms;
  }

  print_title("Open loop, admission ON — shedding holds goodput");
  print_header();
  double peak_goodput = 0.0;
  double overload_goodput = 0.0;
  for (double mult : multipliers) {
    wp.offered_qps = mult * capacity_qps;
    const std::vector<Request> trace =
        generate_workload(bench.data.queries.count(), wp);
    ServeResult res = runtime.run(trace);
    print_report_row(mult, wp.offered_qps, res.report);
    ok = ok && res.report.served + res.report.shed == res.report.offered;
    peak_goodput = std::max(peak_goodput, res.report.goodput_qps);
    if (mult == multipliers.back()) overload_goodput = res.report.goodput_qps;
  }

  print_rule(92);
  std::printf("admission at %.2fx overload keeps goodput at %.0f/%.0f qps "
              "(%.0f%% of peak)\n",
              multipliers.back(), overload_goodput, peak_goodput,
              peak_goodput > 0 ? 100.0 * overload_goodput / peak_goodput : 0.0);
  // Acceptance: shedding keeps goodput within 10% of the sweep's peak even
  // past saturation.
  ok = ok && overload_goodput >= 0.9 * peak_goodput;

  if (!ok) {
    std::printf("FAILED: serving invariants violated (see rows above)\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
