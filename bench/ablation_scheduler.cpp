// Ablation: runtime-scheduler components (Section IV-D). Holds the layout
// fixed (split + duplicate + heat allocation) and varies only the online
// policy: Eq. 15 greedy predictor vs round-robin replica rotation, and the
// inter-batch filter on/off across batch sizes.

#include <cstdio>

#include "common/stats.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

int main() {
  BenchScale scale;
  const BenchData bench = make_sift_bench(scale);
  const std::size_t nprobe = 16;
  const IvfPqIndex index = build_index(bench, 128);

  print_title("Ablation A: replica-choice policy (single batch)");
  std::printf("%-24s | %11s | %10s\n", "policy", "busy (s)", "imbalance");
  print_rule();
  double greedy_busy = 0.0;
  for (const SchedulePolicy policy : {SchedulePolicy::kGreedy, SchedulePolicy::kRoundRobin}) {
    DrimEngineOptions o = default_engine_options(scale, nprobe);
    o.scheduler.policy = policy;
    o.scheduler.enable_filter = false;
    DrimAnnEngine engine(index, bench.data.learn, o);
    DrimSearchStats stats;
    engine.search(bench.data.queries, scale.k, nprobe, &stats);
    if (policy == SchedulePolicy::kGreedy) greedy_busy = stats.dpu_busy_seconds;
    std::printf("%-24s | %11.5f | %10.2f\n",
                policy == SchedulePolicy::kGreedy ? "greedy (Eq. 15 predictor)"
                                                  : "round-robin",
                stats.dpu_busy_seconds, imbalance_factor(stats.per_dpu_seconds));
  }
  print_rule();

  print_title("Ablation B: inter-batch filter across batch sizes");
  std::printf("%10s | %-9s | %11s | %8s | %s\n", "batch", "filter", "total (s)",
              "batches", "vs greedy single-batch");
  print_rule();
  for (std::size_t batch : {48, 96}) {
    for (bool filter : {false, true}) {
      DrimEngineOptions o = default_engine_options(scale, nprobe);
      o.batch_size = batch;
      o.scheduler.enable_filter = filter;
      o.scheduler.filter_slack = 0.20;
      DrimAnnEngine engine(index, bench.data.learn, o);
      DrimSearchStats stats;
      engine.search(bench.data.queries, scale.k, nprobe, &stats);
      std::printf("%10zu | %-9s | %11.5f | %8zu | %7.2fx\n", batch,
                  filter ? "on" : "off", stats.dpu_busy_seconds, stats.batches,
                  greedy_busy / stats.dpu_busy_seconds);
    }
  }
  print_rule();
  std::printf("the filter trims each batch's predicted-slow tail; its win grows as\n"
              "batches shrink and per-batch load variance rises\n");
  return 0;
}
