// Figure 11 reproduction: load-balance optimization effects.
//  (a) Full stack (split + duplicate + heat allocation + runtime scheduling)
//      vs the ID-order baseline: paper reports 4.84x-6.19x overall speedup.
//  (b) Heat-aware data allocation alone: 1.76x-4.07x.
// Also prints the slowest/fastest-DPU ratio the paper motivates with ("up to
// five times longer than the fastest DPU" under the trivial layout).

#include <cstdio>

#include "common/stats.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

DrimEngineOptions trivial_options(const BenchScale& scale, std::size_t nprobe) {
  DrimEngineOptions o = default_engine_options(scale, nprobe);
  o.layout.enable_split = false;
  o.layout.enable_duplicate = false;
  o.layout.heat_allocation = false;
  o.scheduler.enable_filter = false;
  return o;
}

}  // namespace

int main() {
  BenchScale scale;
  const BenchData bench = make_sift_bench(scale);
  const std::size_t nprobe = 16;

  // nlist must exceed the DPU count for layout to matter at all (the paper
  // has 6.5 clusters per DPU at its headline setting); the sweep keeps that
  // ratio in [2, 8].
  print_title("Fig. 11(a): full load-balance stack vs ID-order baseline");
  std::printf("%6s | %11s %11s | %8s | %11s %11s\n", "nlist", "trivial(s)",
              "balanced(s)", "speedup", "imb triv", "imb bal");
  print_rule();

  std::vector<double> overall, alloc_only_speedups;
  for (std::size_t nlist : {128, 256, 512}) {
    const IvfPqIndex index = build_index(bench, nlist);

    const DrimRun trivial =
        run_drim(bench, index, trivial_options(scale, nprobe), scale.k, nprobe);
    const DrimRun balanced = run_drim(bench, index, default_engine_options(scale, nprobe),
                                      scale.k, nprobe);
    const double speedup = trivial.stats.dpu_busy_seconds / balanced.stats.dpu_busy_seconds;
    overall.push_back(speedup);
    std::printf("%6zu | %11.5f %11.5f | %7.2fx | %10.2fx %10.2fx\n", nlist,
                trivial.stats.dpu_busy_seconds, balanced.stats.dpu_busy_seconds, speedup,
                imbalance_factor(trivial.stats.per_dpu_seconds),
                imbalance_factor(balanced.stats.per_dpu_seconds));
  }
  print_rule();
  std::printf("geomean overall speedup: %.2fx (paper: 4.84x-6.19x)\n", geomean(overall));

  print_title("Fig. 11(b): heat-aware data allocation only (no split, no duplication)");
  std::printf("%6s | %11s %11s | %8s\n", "nlist", "trivial(s)", "alloc(s)", "speedup");
  print_rule();
  for (std::size_t nlist : {128, 256, 512}) {
    const IvfPqIndex index = build_index(bench, nlist);
    const DrimRun trivial =
        run_drim(bench, index, trivial_options(scale, nprobe), scale.k, nprobe);

    DrimEngineOptions alloc_only = trivial_options(scale, nprobe);
    alloc_only.layout.heat_allocation = true;
    const DrimRun alloc = run_drim(bench, index, alloc_only, scale.k, nprobe);

    const double speedup = trivial.stats.dpu_busy_seconds / alloc.stats.dpu_busy_seconds;
    alloc_only_speedups.push_back(speedup);
    std::printf("%6zu | %11.5f %11.5f | %7.2fx\n", nlist,
                trivial.stats.dpu_busy_seconds, alloc.stats.dpu_busy_seconds, speedup);
  }
  print_rule();
  std::printf("geomean allocation-only speedup: %.2fx (paper: 1.76x-4.07x)\n",
              geomean(alloc_only_speedups));
  return 0;
}
