// Ablation: host<->PIM link sensitivity. The paper stresses that the host
// link carries only ~0.75% of the aggregate internal PIM bandwidth, so the
// framework is designed to keep per-batch transfers tiny (queries in,
// top-k out) and overlapped. This sweep scales the link bandwidth and also
// reports what an "online cluster shipping" design — the strawman rejected
// in Section II-C — would pay per batch.

#include <cstdio>

#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

int main() {
  BenchScale scale;
  const BenchData bench = make_sift_bench(scale);
  const std::size_t nprobe = 16;
  const IvfPqIndex index = build_index(bench, 128);

  print_title("Ablation: host-link bandwidth sweep (DRIM-ANN per-batch traffic)");
  std::printf("%12s | %12s | %12s | %11s | %s\n", "link GB/s", "xfer in (s)",
              "xfer out (s)", "total (s)", "xfer share");
  print_rule();
  for (double gbps : {1.2, 4.8, 19.2, 76.8}) {
    DrimEngineOptions o = default_engine_options(scale, nprobe);
    o.pim.host_link_bytes_per_sec = gbps * 1e9;
    DrimAnnEngine engine(index, bench.data.learn, o);
    DrimSearchStats stats;
    engine.search(bench.data.queries, scale.k, nprobe, &stats);
    const double xfer = stats.transfer_in_seconds + stats.transfer_out_seconds;
    std::printf("%12.1f | %12.6f | %12.6f | %11.5f | %9.2f%%\n", gbps,
                stats.transfer_in_seconds, stats.transfer_out_seconds,
                stats.total_seconds, 100.0 * xfer / stats.total_seconds);
  }
  print_rule();

  // The rejected alternative: shipping every located cluster's codes from
  // the host each batch ("intolerable online cluster transfer").
  print_title("Strawman: per-batch cluster shipping cost at 19.2 GB/s");
  const IvfPqIndex& idx = index;
  double shipped_bytes = 0.0;
  for (std::size_t q = 0; q < bench.data.queries.count(); ++q) {
    for (std::uint32_t c : idx.locate_clusters(bench.data.queries.row(q), nprobe)) {
      shipped_bytes +=
          static_cast<double>(idx.list(c).size()) * (idx.code_size() + 4.0);
    }
  }
  const double ship_seconds = shipped_bytes / 19.2e9;
  DrimEngineOptions o = default_engine_options(scale, nprobe);
  DrimAnnEngine engine(index, bench.data.learn, o);
  DrimSearchStats stats;
  engine.search(bench.data.queries, scale.k, nprobe, &stats);
  std::printf("clusters touched per batch: %.1f MB -> %.4f s of link time alone,\n"
              "%.1fx the WHOLE resident-layout batch (%.5f s) — why DRIM-ANN pins\n"
              "clusters in MRAM and moves only queries and hits\n",
              shipped_bytes / 1e6, ship_seconds, ship_seconds / stats.total_seconds,
              stats.total_seconds);
  return 0;
}
