// Figure 6 reproduction: end-to-end performance on the SIFT-like corpus.
//   (a) throughput vs nlist at fixed nprobe
//   (b) throughput vs nprobe at fixed nlist
//   (c) pipelined execution: depth sweep on a transfer-heavy configuration
// The paper reports DRIM-ANN at 2.35x-3.65x over Faiss-CPU (geomean 2.92x)
// on SIFT100M. Scale and platform substitutions are described in
// bench/support/harness.hpp and EXPERIMENTS.md. Writes
// BENCH_fig06_e2e_sift.json (speedup rows plus the pipeline sweep).

#include <cstdio>

#include "backend/drim_backend.hpp"
#include "common/stats.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

void run_row(const BenchData& bench, const BenchScale& scale, std::size_t nlist,
             std::size_t nprobe, std::vector<double>& speedups) {
  const IvfPqIndex index = build_index(bench, nlist);
  const CpuRun cpu = run_cpu(bench, index, scale.k, nprobe, scale.num_dpus);
  const DrimRun drim =
      run_drim(bench, index, default_engine_options(scale, nprobe), scale.k, nprobe);
  const double speedup = drim.modeled_qps / cpu.modeled_qps;
  speedups.push_back(speedup);
  std::printf("%6zu %7zu | %8.3f %9.3f | %11.0f %11.0f | %8.2fx | %16s | %10.0f\n",
              nlist, nprobe, cpu.recall, drim.recall, cpu.modeled_qps,
              drim.modeled_qps, speedup, format_batch_tail(drim.batch_ms).c_str(),
              cpu.measured_qps);
}

void header() {
  std::printf("%6s %7s | %8s %9s | %11s %11s | %9s | %16s | %10s\n", "nlist",
              "nprobe", "cpu R@10", "drim R@10", "CPU QPS*", "DRIM QPS*", "speedup",
              "batch ms 50/95/99", "cpu meas");
  print_rule(96);
}

}  // namespace

int main() {
  BenchScale scale;
  std::printf("Fig. 6 — end-to-end performance, %s\n", "SIFT-like");
  std::printf("scaled: N=%zu Q=%zu, %zu simulated DPUs; CPU modeled at the paper's\n"
              "DPU:thread ratio (* = modeled paper-platform QPS)\n",
              scale.num_base, scale.num_queries, scale.num_dpus);

  const BenchData bench = make_sift_bench(scale);
  std::vector<double> speedups;
  BenchReport report("fig06_e2e_sift");
  report.set_config("num_base", scale.num_base);
  report.set_config("num_queries", scale.num_queries);
  report.set_config("num_dpus", scale.num_dpus);

  print_title("Fig. 6(a): sweep nlist, nprobe = 16  (paper: nprobe = 96)");
  header();
  for (std::size_t nlist : {32, 64, 128, 256}) {
    run_row(bench, scale, nlist, 16, speedups);
  }

  print_title("Fig. 6(b): sweep nprobe, nlist = 128  (paper: nlist = 2^14)");
  header();
  for (std::size_t nprobe : {8, 16, 24, 32}) {
    run_row(bench, scale, 128, nprobe, speedups);
  }

  print_rule();
  std::printf("geomean speedup over modeled CPU: %.2fx  (paper: 2.92x geomean, "
              "2.35x-3.65x range)\n",
              geomean(speedups));
  report.add_row("cpu_speedup");
  report.add_metric("geomean_speedup", geomean(speedups));

  // (c) Pipelined batch execution. Transfer-heavy configuration: small PQ
  // tables keep the per-task LUT build cheap, one task per DPU at paper-scale
  // DPU counts keeps per-batch compute low, and a large k makes the result
  // pull carry ~half as many host-link seconds as the DPU array burns — so
  // double buffering (depth 2) can hide most of the link time under compute.
  // CL stays on the host (the default), overlapping the PIM batch.
  print_title("Fig. 6(c): pipelined execution — depth sweep, transfer-heavy config");
  const std::size_t p_nlist = 512, p_nprobe = 32, p_k = 200, p_batch = 32;
  const IvfPqIndex p_index = build_index(bench, p_nlist, /*m=*/8, /*cb=*/16);
  std::printf("nlist=%zu, m=8, cb=16, nprobe=%zu, k=%zu, batch=%zu, 2048 DPUs "
              "(analytic platform)\n",
              p_nlist, p_nprobe, p_k, p_batch);
  std::printf("%6s | %12s | %11s | %8s\n", "depth", "total ms", "QPS*", "speedup");
  print_rule(46);
  double serial_total_s = 0.0;
  double depth2_total_s = 0.0;
  for (std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    DrimEngineOptions popts = default_engine_options(scale, p_nprobe);
    popts.platform = PimPlatformKind::kAnalytic;
    popts.pim.num_dpus = 2048;
    popts.batch_size = p_batch;
    popts.pipeline_depth = depth;
    DrimBackend backend(p_index, bench.data.learn, popts);
    (void)backend.search(bench.data.queries, p_k, p_nprobe);
    const double total_s = backend.stats().total_seconds;
    if (depth == 1) serial_total_s = total_s;
    if (depth == 2) depth2_total_s = total_s;
    std::printf("%6zu | %12.3f | %11.0f | %7.2fx\n", depth, total_s * 1e3,
                static_cast<double>(scale.num_queries) / total_s,
                total_s > 0.0 ? serial_total_s / total_s : 1.0);
  }
  const double pipeline_speedup =
      depth2_total_s > 0.0 ? serial_total_s / depth2_total_s : 1.0;
  std::printf("depth-2 double buffering: %.2fx over serial (%.1f%% less time)\n",
              pipeline_speedup,
              100.0 * (1.0 - (serial_total_s > 0.0
                                  ? depth2_total_s / serial_total_s
                                  : 1.0)));
  report.add_row("pipeline_depth_sweep");
  report.add_metric("serial_total_s", serial_total_s);
  report.add_metric("depth2_total_s", depth2_total_s);
  report.add_metric("pipeline_speedup", pipeline_speedup);
  report.write();
  return 0;
}
