// Figure 6 reproduction: end-to-end performance on the SIFT-like corpus.
//   (a) throughput vs nlist at fixed nprobe
//   (b) throughput vs nprobe at fixed nlist
// The paper reports DRIM-ANN at 2.35x-3.65x over Faiss-CPU (geomean 2.92x)
// on SIFT100M. Scale and platform substitutions are described in
// bench/support/harness.hpp and EXPERIMENTS.md.

#include <cstdio>

#include "common/stats.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

namespace {

void run_row(const BenchData& bench, const BenchScale& scale, std::size_t nlist,
             std::size_t nprobe, std::vector<double>& speedups) {
  const IvfPqIndex index = build_index(bench, nlist);
  const CpuRun cpu = run_cpu(bench, index, scale.k, nprobe, scale.num_dpus);
  const DrimRun drim =
      run_drim(bench, index, default_engine_options(scale, nprobe), scale.k, nprobe);
  const double speedup = drim.modeled_qps / cpu.modeled_qps;
  speedups.push_back(speedup);
  std::printf("%6zu %7zu | %8.3f %9.3f | %11.0f %11.0f | %8.2fx | %16s | %10.0f\n",
              nlist, nprobe, cpu.recall, drim.recall, cpu.modeled_qps,
              drim.modeled_qps, speedup, format_batch_tail(drim.batch_ms).c_str(),
              cpu.measured_qps);
}

void header() {
  std::printf("%6s %7s | %8s %9s | %11s %11s | %9s | %16s | %10s\n", "nlist",
              "nprobe", "cpu R@10", "drim R@10", "CPU QPS*", "DRIM QPS*", "speedup",
              "batch ms 50/95/99", "cpu meas");
  print_rule(96);
}

}  // namespace

int main() {
  BenchScale scale;
  std::printf("Fig. 6 — end-to-end performance, %s\n", "SIFT-like");
  std::printf("scaled: N=%zu Q=%zu, %zu simulated DPUs; CPU modeled at the paper's\n"
              "DPU:thread ratio (* = modeled paper-platform QPS)\n",
              scale.num_base, scale.num_queries, scale.num_dpus);

  const BenchData bench = make_sift_bench(scale);
  std::vector<double> speedups;

  print_title("Fig. 6(a): sweep nlist, nprobe = 16  (paper: nprobe = 96)");
  header();
  for (std::size_t nlist : {32, 64, 128, 256}) {
    run_row(bench, scale, nlist, 16, speedups);
  }

  print_title("Fig. 6(b): sweep nprobe, nlist = 128  (paper: nlist = 2^14)");
  header();
  for (std::size_t nprobe : {8, 16, 24, 32}) {
    run_row(bench, scale, 128, nprobe, speedups);
  }

  print_rule();
  std::printf("geomean speedup over modeled CPU: %.2fx  (paper: 2.92x geomean, "
              "2.35x-3.65x range)\n",
              geomean(speedups));
  return 0;
}
