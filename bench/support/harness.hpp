#pragma once
// Shared benchmark harness for the per-figure reproduction binaries.
//
// Scaling note (documented in DESIGN.md / EXPERIMENTS.md): the paper runs
// 100M-point corpora on a 2530-DPU UPMEM server against a 32-thread Xeon.
// This repository runs scaled corpora on a simulated platform, holding the
// paper's DPU-to-CPU-thread ratio fixed: with `num_dpus` simulated DPUs the
// CPU comparator is modeled as 32 * (num_dpus / 2530) Xeon threads with
// proportional memory bandwidth. Speedups therefore compare equal fractions
// of both platforms, preserving who-wins and trend shapes. Measured
// wall-clock numbers from this container are also printed for transparency
// but are not the comparison basis (the container is a 1-core CI box).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "backend/ann_backend.hpp"
#include "baseline/cpu_ivfpq.hpp"
#include "common/stats.hpp"
#include "core/flat_search.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"
#include "model/perf_model.hpp"

namespace drim::bench {

/// Scaled dataset defaults (paper: 100M base / 10K queries / 2530 DPUs).
/// N and nlist are chosen so the average cluster size C = N / nlist matches
/// the paper's regime (C in [1526, 24414]); C drives the DC-vs-LC balance
/// that determines both the CPU bottleneck and the DPU kernel mix, so it is
/// the scale parameter most worth preserving.
struct BenchScale {
  std::size_t num_base = 200'000;
  std::size_t num_queries = 192;
  std::size_t num_learn = 16'000;
  /// Kept at or below the smallest swept nlist so IVF residuals stay within
  /// one mixture component — the regime where PQ clears the paper's
  /// recall@10 >= 0.8 constraint, as on the real corpora.
  std::size_t num_components = 64;
  std::size_t num_dpus = 64;
  std::size_t k = 10;
  /// Host threads driving the simulation (0 = DRIM_THREADS env var, falling
  /// back to all cores). Simulated seconds and recall are bit-identical at
  /// any setting; only host wall-clock changes.
  std::size_t threads = 0;
};

/// Apply the host-thread knob: n == 0 reads the DRIM_THREADS env var (unset
/// or 0 = leave OpenMP at all cores). Returns the effective thread count.
std::size_t configure_host_threads(std::size_t n = 0);

/// Dataset + exact ground truth, built once per binary.
struct BenchData {
  SyntheticData data;
  std::vector<std::vector<Neighbor>> ground_truth;
  std::string name;
};

BenchData make_sift_bench(const BenchScale& scale);
BenchData make_deep_bench(const BenchScale& scale);

/// Train + populate an IVF-PQ index (m=32, cb=256 clears the paper's
/// recall@10 >= 0.8 constraint on the synthetic corpora; see EXPERIMENTS.md).
IvfPqIndex build_index(const BenchData& bench, std::size_t nlist, std::size_t m = 32,
                       std::size_t cb = 256, PQVariant variant = PQVariant::kPQ);

/// CPU comparator scaled to the paper's DPU:thread ratio (see header note).
PlatformParams scaled_cpu_platform(std::size_t num_dpus);

/// Fill the Eq. (1)-(12) workload from an index + query setup.
AnnWorkload workload_for(const IvfPqIndex& index, std::size_t num_base,
                         std::size_t num_queries, std::size_t k, std::size_t nprobe);

/// One CPU-baseline evaluation: measured wall clock plus the paper-platform
/// model estimate.
struct CpuRun {
  double recall = 0.0;
  double measured_qps = 0.0;         ///< this container, for transparency
  double modeled_seconds = 0.0;      ///< scaled Xeon model (comparison basis)
  double modeled_qps = 0.0;
  CpuSearchStats stats;
};
CpuRun run_cpu(const BenchData& bench, const IvfPqIndex& index, std::size_t k,
               std::size_t nprobe, std::size_t num_dpus);

/// One DRIM-ANN evaluation on the simulated platform. `wall_seconds` is the
/// measured host time spent simulating search() on this container (scales
/// with the thread knob); `modeled_seconds` is the simulated latency and is
/// independent of host threading.
struct DrimRun {
  double recall = 0.0;
  double modeled_seconds = 0.0;
  double modeled_qps = 0.0;
  double wall_seconds = 0.0;      ///< host wall-clock of search() simulation
  double load_wall_seconds = 0.0; ///< host wall-clock of engine build + upload
  std::size_t host_threads = 1;   ///< effective simulation threads
  /// Tail summary (milliseconds) of the per-batch modeled latencies in
  /// stats.batch_seconds — the figure tables print p50/p95/p99 columns from
  /// this so batching-induced latency spread is visible next to the mean.
  TailSummary batch_ms;
  DrimSearchStats stats;
};
DrimRun run_drim(const BenchData& bench, const IvfPqIndex& index,
                 const DrimEngineOptions& options, std::size_t k, std::size_t nprobe,
                 std::size_t threads = 0);

/// Default engine options for a bench scale.
DrimEngineOptions default_engine_options(const BenchScale& scale, std::size_t nprobe);

/// One evaluation of any AnnBackend (batch search() path). Modeled seconds
/// come from the backend's own stats; wall seconds are this container's
/// host clock around the call.
struct BackendRun {
  double recall = 0.0;
  double modeled_seconds = 0.0;
  double modeled_qps = 0.0;
  double wall_seconds = 0.0;
  BackendStats stats;
};
BackendRun run_backend(const BenchData& bench, AnnBackend& backend, std::size_t k,
                       std::size_t nprobe);

/// Git state recorded into every BENCH_*.json: the revision plus whether the
/// working tree was dirty or HEAD detached when the report was written, so
/// artifacts from unclean trees are distinguishable from clean-rev runs.
struct GitState {
  std::string rev = "unknown";
  bool dirty = false;     ///< `git status --porcelain` non-empty
  bool detached = false;  ///< `git symbolic-ref -q HEAD` fails (detached HEAD)
};

/// Probe the current working directory's git state ("unknown" / false fields
/// outside a repository).
GitState query_git_state();

/// Machine-readable companion to the printed tables: accumulates a config
/// map plus labeled metric rows and serializes them as BENCH_<name>.json
/// (bench name, git revision + dirty/detached state, host wall-clock since
/// construction, config, rows). Every figure/bench binary writes one so
/// sweeps are scriptable without scraping stdout.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  void set_config(const std::string& key, const std::string& value);
  void set_config(const std::string& key, double value);
  void set_config(const std::string& key, std::size_t value);

  /// Start a new row; subsequent add_metric calls attach to it.
  void add_row(const std::string& label);
  void add_metric(const std::string& key, double value);

  /// Write BENCH_<name>.json into `dir`; returns the path written.
  std::string write(const std::string& dir = ".") const;

 private:
  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string name_;
  double start_seconds_ = 0.0;  ///< steady-clock origin for host_wall_seconds
  std::vector<std::pair<std::string, std::string>> config_;  ///< key -> JSON literal
  std::vector<Row> rows_;
};

/// Formatting helpers for paper-style tables.
void print_rule(std::size_t width = 78);
void print_title(const std::string& title);

/// "p50/p95/p99" of a per-batch tail summary, in ms (e.g. "0.42/0.55/0.61").
std::string format_batch_tail(const TailSummary& t);

}  // namespace drim::bench
