#include "support/harness.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "common/parallel.hpp"
#include "common/timer.hpp"

namespace drim::bench {

std::size_t configure_host_threads(std::size_t n) {
  if (n == 0) {
    if (const char* env = std::getenv("DRIM_THREADS")) {
      n = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
  }
  return static_cast<std::size_t>(set_num_threads(static_cast<int>(n)));
}

namespace {

SyntheticSpec spec_for(const BenchScale& scale) {
  SyntheticSpec spec;
  spec.num_base = scale.num_base;
  spec.num_queries = scale.num_queries;
  spec.num_learn = scale.num_learn;
  spec.num_components = scale.num_components;
  return spec;
}

}  // namespace

BenchData make_sift_bench(const BenchScale& scale) {
  BenchData bench;
  bench.name = "SIFT-like (D=128, uint8)";
  bench.data = make_sift_like(spec_for(scale));
  bench.ground_truth = flat_search_all(bench.data.base, bench.data.queries, scale.k);
  return bench;
}

BenchData make_deep_bench(const BenchScale& scale) {
  BenchData bench;
  bench.name = "DEEP-like (D=96, uint8-quantized)";
  bench.data = make_deep_like(spec_for(scale));
  bench.ground_truth = flat_search_all(bench.data.base, bench.data.queries, scale.k);
  return bench;
}

IvfPqIndex build_index(const BenchData& bench, std::size_t nlist, std::size_t m,
                       std::size_t cb, PQVariant variant) {
  IvfPqParams p;
  p.nlist = nlist;
  p.pq.m = m;
  p.pq.cb_entries = cb;
  p.pq.train_iters = 10;
  p.coarse_iters = 10;
  p.variant = variant;
  IvfPqIndex index;
  index.train(bench.data.learn, p);
  index.add(bench.data.base);
  return index;
}

PlatformParams scaled_cpu_platform(std::size_t num_dpus) {
  const double ratio = static_cast<double>(num_dpus) / 2530.0;
  PlatformParams cpu = cpu_platform(32.0 * ratio);
  // Memory bandwidth scales with the platform fraction; cache bandwidth is
  // already per-thread inside cpu_platform().
  cpu.bandwidth_Bps *= ratio;
  return cpu;
}

AnnWorkload workload_for(const IvfPqIndex& index, std::size_t num_base,
                         std::size_t num_queries, std::size_t k, std::size_t nprobe) {
  AnnWorkload w;
  w.N = static_cast<double>(num_base);
  w.Q = static_cast<double>(num_queries);
  w.D = static_cast<double>(index.dim());
  w.K = static_cast<double>(k);
  w.P = static_cast<double>(nprobe);
  w.C = static_cast<double>(num_base) / static_cast<double>(index.nlist());
  w.M = static_cast<double>(index.pq().m());
  w.CB = static_cast<double>(index.pq().cb_entries());
  return w;
}

CpuRun run_cpu(const BenchData& bench, const IvfPqIndex& index, std::size_t k,
               std::size_t nprobe, std::size_t num_dpus) {
  CpuRun run;
  CpuIvfPq cpu(index);
  const auto results = cpu.search_batch(bench.data.queries, k, nprobe, &run.stats);
  run.recall = mean_recall_at_k(results, bench.ground_truth, k);
  run.measured_qps = run.stats.qps();

  const AnnWorkload w = workload_for(index, bench.data.base.count(),
                                     bench.data.queries.count(), k, nprobe);
  run.modeled_seconds =
      estimate_single(w, scaled_cpu_platform(num_dpus), /*multiplier_less=*/false);
  run.modeled_qps = static_cast<double>(bench.data.queries.count()) / run.modeled_seconds;
  return run;
}

DrimRun run_drim(const BenchData& bench, const IvfPqIndex& index,
                 const DrimEngineOptions& options, std::size_t k, std::size_t nprobe,
                 std::size_t threads) {
  DrimRun run;
  run.host_threads = configure_host_threads(threads);
  WallTimer timer;
  DrimAnnEngine engine(index, bench.data.learn, options);
  run.load_wall_seconds = timer.seconds();
  timer.reset();
  const auto results = engine.search(bench.data.queries, k, nprobe, &run.stats);
  run.wall_seconds = timer.seconds();
  run.recall = mean_recall_at_k(results, bench.ground_truth, k);
  run.modeled_seconds = run.stats.total_seconds;
  run.modeled_qps = run.stats.qps();
  run.batch_ms = tail_summary(run.stats.batch_seconds);
  run.batch_ms.p50 *= 1e3;
  run.batch_ms.p95 *= 1e3;
  run.batch_ms.p99 *= 1e3;
  run.batch_ms.mean *= 1e3;
  run.batch_ms.max *= 1e3;
  return run;
}

DrimEngineOptions default_engine_options(const BenchScale& scale, std::size_t nprobe) {
  DrimEngineOptions o;
  o.pim.num_dpus = scale.num_dpus;
  o.layout.split_threshold = 2048;  // paper-regime clusters hold thousands
  o.layout.dup_copies = 1;
  o.layout.dup_fraction = 0.25;
  o.heat_nprobe = nprobe;
  return o;
}

BackendRun run_backend(const BenchData& bench, AnnBackend& backend, std::size_t k,
                       std::size_t nprobe) {
  BackendRun run;
  WallTimer timer;
  const auto results = backend.search(bench.data.queries, k, nprobe);
  run.wall_seconds = timer.seconds();
  run.recall = mean_recall_at_k(results, bench.ground_truth, k);
  run.stats = backend.stats();
  run.modeled_seconds = run.stats.total_seconds;
  run.modeled_qps = run.stats.qps();
  return run;
}

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  // JSON has no inf/nan literals; null is the conventional stand-in.
  std::string s(buf);
  if (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

/// Run one git command; returns true when it exited 0, with its (trimmed)
/// stdout in `out`.
bool run_git(const char* cmd, std::string& out) {
  FILE* pipe = ::popen(cmd, "r");
  if (pipe == nullptr) return false;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), pipe)) out += buf;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return status == 0;
}

}  // namespace

GitState query_git_state() {
  GitState g;
  std::string rev;
  if (run_git("git rev-parse HEAD 2>/dev/null", rev) && !rev.empty()) {
    g.rev = rev;
  } else {
    return g;  // not a repository: "unknown", clean, attached
  }
  std::string status;
  if (run_git("git status --porcelain 2>/dev/null", status)) {
    g.dirty = !status.empty();
  }
  std::string ref;
  g.detached = !run_git("git symbolic-ref -q HEAD 2>/dev/null", ref);
  return g;
}

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_seconds_(steady_seconds()) {}

void BenchReport::set_config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void BenchReport::set_config(const std::string& key, double value) {
  config_.emplace_back(key, json_number(value));
}

void BenchReport::set_config(const std::string& key, std::size_t value) {
  config_.emplace_back(key, std::to_string(value));
}

void BenchReport::add_row(const std::string& label) {
  rows_.push_back(Row{label, {}});
}

void BenchReport::add_metric(const std::string& key, double value) {
  if (rows_.empty()) add_row("");
  rows_.back().metrics.emplace_back(key, value);
}

std::string BenchReport::write(const std::string& dir) const {
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  const GitState git = query_git_state();
  out << "{\n";
  out << "  \"bench\": \"" << json_escape(name_) << "\",\n";
  out << "  \"git_rev\": \"" << json_escape(git.rev) << "\",\n";
  out << "  \"git_dirty\": " << (git.dirty ? "true" : "false") << ",\n";
  out << "  \"git_detached\": " << (git.detached ? "true" : "false") << ",\n";
  out << "  \"host_wall_seconds\": "
      << json_number(steady_seconds() - start_seconds_) << ",\n";
  out << "  \"config\": {";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    if (i) out << ", ";
    out << "\"" << json_escape(config_[i].first) << "\": " << config_[i].second;
  }
  out << "},\n";
  out << "  \"rows\": [\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out << "    {\"label\": \"" << json_escape(rows_[r].label)
        << "\", \"metrics\": {";
    for (std::size_t i = 0; i < rows_[r].metrics.size(); ++i) {
      if (i) out << ", ";
      out << "\"" << json_escape(rows_[r].metrics[i].first)
          << "\": " << json_number(rows_[r].metrics[i].second);
    }
    out << "}}" << (r + 1 < rows_.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  std::printf("[bench] wrote %s\n", path.c_str());
  return path;
}

void print_rule(std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

void print_title(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

std::string format_batch_tail(const TailSummary& t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f/%.2f/%.2f", t.p50, t.p95, t.p99);
  return buf;
}

}  // namespace drim::bench
