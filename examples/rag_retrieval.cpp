// RAG retrieval scenario: the paper's motivating application. A document
// corpus is embedded into DEEP-style vectors; an interactive service issues
// small query batches with a skewed topic distribution (popular topics hit
// the same clusters — exactly the contention DRIM-ANN's duplication layer
// targets). The example runs the DSE to pick an index configuration under
// the paper's recall@10 >= 0.8 constraint, then serves batches on the
// simulated PIM platform and reports tail behaviour.
//
//   ./example_rag_retrieval [num_docs]

#include <cstdio>
#include <cstdlib>

#include "common/stats.hpp"
#include "core/flat_search.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"
#include "model/dse.hpp"

int main(int argc, char** argv) {
  using namespace drim;

  SyntheticSpec spec;
  spec.num_base = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40'000;
  spec.num_queries = 256;
  spec.num_learn = 8'000;
  spec.num_components = 64;
  spec.query_skew = 1.2;  // a few hot topics dominate the query stream
  spec.dim = 96;

  std::printf("RAG corpus: %zu documents, DEEP-style %zu-d embeddings, "
              "Zipf(%.1f) topic skew\n",
              spec.num_base, spec.dim, spec.query_skew);
  SyntheticData corpus = make_deep_like(spec);
  const std::size_t k = 10;
  const auto ground_truth = flat_search_all(corpus.base, corpus.queries, k);

  // ---- DSE under the paper's accuracy constraint ----
  std::printf("\nrunning DSE (Bayesian optimization over K/P/C/M/CB, "
              "recall@10 >= 0.80)...\n");
  AnnWorkload base;
  base.N = static_cast<double>(spec.num_base);
  base.Q = static_cast<double>(spec.num_queries);
  base.D = static_cast<double>(corpus.base.dim());

  DseSpace space;
  space.P = {8, 16, 32};
  space.C = {static_cast<double>(spec.num_base) / 512.0,
             static_cast<double>(spec.num_base) / 256.0,
             static_cast<double>(spec.num_base) / 128.0};
  space.M = {16, 32};
  space.CB = {128, 256};

  // The expensive black box: train a real index and measure real recall on a
  // held-out sample (32 queries keeps each probe cheap).
  FloatMatrix probe_queries(32, corpus.base.dim());
  for (std::size_t i = 0; i < 32; ++i) {
    std::copy_n(corpus.queries.row(i).data(), corpus.base.dim(),
                probe_queries.row(i).data());
  }
  std::vector<std::vector<Neighbor>> probe_gt(ground_truth.begin(),
                                              ground_truth.begin() + 32);

  auto accuracy_fn = [&](const DseCandidate& c) {
    IvfPqParams p;
    p.nlist = static_cast<std::size_t>(base.N / c.C);
    p.pq.m = static_cast<std::size_t>(c.M);
    p.pq.cb_entries = static_cast<std::size_t>(c.CB);
    p.pq.train_iters = 6;
    p.coarse_iters = 6;
    IvfPqIndex index;
    index.train(corpus.learn, p);
    index.add(corpus.base);
    std::vector<std::vector<Neighbor>> results;
    for (std::size_t q = 0; q < 32; ++q) {
      results.push_back(index.search(probe_queries.row(q), k,
                                     static_cast<std::size_t>(c.P)));
    }
    const double r = mean_recall_at_k(results, probe_gt, k);
    std::printf("  probe: nlist=%4zu P=%3.0f M=%2.0f CB=%3.0f -> recall %.3f\n",
                p.nlist, c.P, c.M, c.CB, r);
    return r;
  };

  const DseResult dse = run_dse(base, space, cpu_platform(), upmem_platform(), 0.80,
                                accuracy_fn, /*budget=*/8);
  if (!dse.found_feasible) {
    std::printf("DSE found no feasible configuration — widen the space\n");
    return 1;
  }
  std::printf("DSE picked: nlist=%zu nprobe=%.0f M=%.0f CB=%.0f "
              "(recall %.3f, modeled %.2f ms/batch)\n",
              static_cast<std::size_t>(base.N / dse.best.C), dse.best.P, dse.best.M,
              dse.best.CB, dse.best_accuracy, dse.best_seconds * 1e3);

  // ---- deploy the tuned index on the PIM platform ----
  IvfPqParams p;
  p.nlist = static_cast<std::size_t>(base.N / dse.best.C);
  p.pq.m = static_cast<std::size_t>(dse.best.M);
  p.pq.cb_entries = static_cast<std::size_t>(dse.best.CB);
  IvfPqIndex index;
  index.train(corpus.learn, p);
  index.add(corpus.base);

  DrimEngineOptions opts;
  opts.pim.num_dpus = 128;
  opts.heat_nprobe = static_cast<std::size_t>(dse.best.P);
  opts.layout.dup_fraction = 0.15;  // hot topics get replicas
  opts.batch_size = 64;             // interactive batches
  DrimAnnEngine engine(index, corpus.learn, opts);

  DrimSearchStats stats;
  const auto results =
      engine.search(corpus.queries, k, static_cast<std::size_t>(dse.best.P), &stats);

  std::printf("\n=== serving report ===\n");
  std::printf("recall@10        : %.3f (constraint 0.80)\n",
              mean_recall_at_k(results, ground_truth, k));
  std::printf("batches          : %zu x %zu queries\n", stats.batches, opts.batch_size);
  std::printf("modeled latency  : %.3f ms per batch (%.0f QPS)\n",
              stats.total_seconds / stats.batches * 1e3, stats.qps());
  std::printf("DPU imbalance    : max/mean %.2f across %zu DPUs\n",
              imbalance_factor(stats.per_dpu_seconds), opts.pim.num_dpus);
  std::printf("energy           : %.2f J for %zu queries\n", stats.energy_joules,
              stats.queries);
  return 0;
}
