// Architecture-aware tuning walkthrough (Section III end to end): prints the
// Eq. (1)-(12) per-phase compute/IO/C2IO table for a workload, shows how the
// multiplier-less conversion moves LC from compute- to IO-bound on UPMEM,
// and runs the Bayesian-optimization DSE against a surrogate accuracy table
// at paper scale (100M points, 2530 DPUs — all analytic, so it runs in
// milliseconds).
//
//   ./example_dse_tuning

#include <cmath>
#include <cstdio>

#include "model/dse.hpp"
#include "model/perf_model.hpp"

using namespace drim;

namespace {

void print_phase_table(const AnnWorkload& w, bool multiplier_less) {
  const auto costs = phase_costs(w, multiplier_less);
  const PlatformParams host = cpu_platform();
  const PlatformParams pim = upmem_platform();
  std::printf("%4s | %12s %12s | %8s | %10s %10s\n", "ph", "ops", "bytes", "C2IO",
              "t@CPU(ms)", "t@PIM(ms)");
  for (std::size_t i = 0; i < kAnnPhases; ++i) {
    const auto p = static_cast<AnnPhase>(i);
    std::printf("%4s | %12.3e %12.3e | %8.3f | %10.3f %10.3f\n",
                ann_phase_name(p).data(), costs[i].compute_ops, costs[i].io_bytes,
                costs[i].c2io(), phase_time(costs[i], host) * 1e3,
                phase_time(costs[i], pim) * 1e3);
  }
}

/// Surrogate accuracy table ("which can be fetched from a table [23]"):
/// recall grows with nprobe/M/CB and shrinks with cluster size.
double accuracy_table(const DseCandidate& c) {
  const double score = 0.25 * std::log2(c.P) / 7.0 + 0.3 * std::log2(c.M) / 5.0 +
                       0.3 * std::log2(c.CB) / 9.0 +
                       0.15 * (1.0 - std::log2(c.C) / 15.0);
  return std::min(1.0, std::max(0.0, score * 1.4));
}

}  // namespace

int main() {
  AnnWorkload w;  // SIFT100M defaults: N=100M, Q=10K, D=128
  w.C = w.N / 16384.0;
  w.P = 96;

  std::printf("=== Eq. (1)-(12) phase model, SIFT100M, nlist=2^14, nprobe=96 ===\n");
  std::printf("\nwith multiplication (no conversion):\n");
  print_phase_table(w, false);
  std::printf("\nafter multiplier-less conversion (square LUT):\n");
  print_phase_table(w, true);
  std::printf("\nnote how LC's compute collapses by ~the 32x multiply premium while"
              "\nits IO stays put: the conversion trades compute for bandwidth,\n"
              "which is the resource UPMEM has in abundance.\n");

  std::printf("\n=== DSE at paper scale (2530 DPUs vs 32-thread Xeon) ===\n");
  const DseSpace space = make_default_space(w.N, 12, 16);
  std::size_t probes = 0;
  const DseResult r = run_dse(
      w, space, cpu_platform(), upmem_platform(), 0.80,
      [&](const DseCandidate& c) {
        ++probes;
        return accuracy_table(c);
      },
      24);

  std::printf("accuracy probes spent: %zu (budget 24, space %zu points)\n", probes,
              space.K.size() * space.P.size() * space.C.size() * space.M.size() *
                  space.CB.size());
  if (r.found_feasible) {
    std::printf("best: K=%.0f P=%.0f nlist=%.0f M=%.0f CB=%.0f\n", r.best.K, r.best.P,
                w.N / r.best.C, r.best.M, r.best.CB);
    std::printf("      accuracy %.3f, modeled batch time %.1f ms (%.0f QPS)\n",
                r.best_accuracy, r.best_seconds * 1e3, w.Q / r.best_seconds);
  }

  std::printf("\nexploration history (first 10):\n");
  std::printf("%3s | %5s %6s %4s %5s | %7s | %9s | %s\n", "#", "P", "nlist", "M",
              "CB", "acc", "time(ms)", "feasible");
  for (std::size_t i = 0; i < r.history.size() && i < 10; ++i) {
    const DseObservation& o = r.history[i];
    std::printf("%3zu | %5.0f %6.0f %4.0f %5.0f | %7.3f | %9.1f | %s\n", i, o.candidate.P,
                w.N / o.candidate.C, o.candidate.M, o.candidate.CB, o.accuracy,
                o.model_seconds * 1e3, o.feasible ? "yes" : "no");
  }
  return 0;
}
