// Online-serving scenario: a stream of small query batches hits the engine,
// and what matters is the tail, not the mean — the paper's load-balancing
// work exists precisely because "the execution time on the PIM is limited by
// the longest-running DPU". This example compares per-batch latency
// distributions (p50/p95/p99/max) across three configurations:
//   1. trivial layout (ID-order, no split/dup, no filter),
//   2. offline layout optimization only,
//   3. full stack (layout + Eq. 15 scheduling + inter-batch filter).
//
//   ./example_serving_tail_latency [num_items] [batch_size]

#include <cstdio>
#include <cstdlib>

#include "common/stats.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

using namespace drim;

namespace {

struct LatencyReport {
  double p50, p95, p99, max_ms, qps;
};

LatencyReport serve(const IvfPqIndex& index, const SyntheticData& data,
                    DrimEngineOptions opts, std::size_t batch_size,
                    std::size_t nprobe) {
  DrimAnnEngine engine(index, data.learn, opts);
  const std::size_t dim = data.queries.dim();

  std::vector<double> batch_ms;
  double total_s = 0.0;
  std::size_t served = 0;
  for (std::size_t begin = 0; begin + batch_size <= data.queries.count();
       begin += batch_size) {
    FloatMatrix batch(batch_size, dim);
    for (std::size_t i = 0; i < batch_size; ++i) {
      std::copy_n(data.queries.row(begin + i).data(), dim, batch.row(i).data());
    }
    DrimSearchStats stats;
    engine.search(batch, 10, nprobe, &stats);
    batch_ms.push_back(stats.total_seconds * 1e3);
    total_s += stats.total_seconds;
    served += batch_size;
  }
  return {percentile(batch_ms, 50), percentile(batch_ms, 95), percentile(batch_ms, 99),
          *std::max_element(batch_ms.begin(), batch_ms.end()),
          static_cast<double>(served) / total_s};
}

}  // namespace

int main(int argc, char** argv) {
  SyntheticSpec spec;
  spec.num_base = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40'000;
  spec.num_queries = 512;
  spec.num_learn = 8'000;
  spec.num_components = 64;
  spec.query_skew = 1.1;
  const std::size_t batch_size = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 32;
  const std::size_t nprobe = 16;

  std::printf("serving %zu queries in batches of %zu over %zu items\n",
              spec.num_queries, batch_size, spec.num_base);
  const SyntheticData data = make_sift_like(spec);

  IvfPqParams params;
  params.nlist = 128;
  params.pq.m = 32;
  params.pq.cb_entries = 256;
  IvfPqIndex index;
  index.train(data.learn, params);
  index.add(data.base);

  DrimEngineOptions trivial;
  trivial.pim.num_dpus = 64;
  trivial.heat_nprobe = nprobe;
  trivial.layout.enable_split = false;
  trivial.layout.enable_duplicate = false;
  trivial.layout.heat_allocation = false;
  trivial.scheduler.enable_filter = false;

  DrimEngineOptions layout_only = trivial;
  layout_only.layout.enable_split = true;
  layout_only.layout.enable_duplicate = true;
  layout_only.layout.heat_allocation = true;
  layout_only.layout.split_threshold = 512;
  layout_only.layout.dup_fraction = 0.25;

  // Third step: more aggressive replication absorbs hot-topic bursts. (The
  // inter-batch filter is a fourth lever, but it only acts when one search
  // call spans several PIM batches — see DrimEngineOptions::batch_size.)
  DrimEngineOptions full = layout_only;
  full.layout.dup_copies = 2;
  full.layout.dup_fraction = 0.40;

  std::printf("\n%-22s | %8s %8s %8s %8s | %8s\n", "configuration", "p50 ms",
              "p95 ms", "p99 ms", "max ms", "QPS");
  for (int i = 0; i < 78; ++i) std::putchar('-');
  std::putchar('\n');
  const struct {
    const char* name;
    DrimEngineOptions* opts;
  } configs[] = {{"trivial (ID-order)", &trivial},
                 {"offline layout only", &layout_only},
                 {"layout + 2x replicas", &full}};
  for (const auto& cfg : configs) {
    const LatencyReport r = serve(index, data, *cfg.opts, batch_size, nprobe);
    std::printf("%-22s | %8.3f %8.3f %8.3f %8.3f | %8.0f\n", cfg.name, r.p50, r.p95,
                r.p99, r.max_ms, r.qps);
  }
  std::printf("\nthe tail (p99/max) compresses step by step: splitting bounds the\n"
              "largest per-task cost, and replication lets the Eq. 15 scheduler\n"
              "spread hot-topic bursts across DPUs.\n");
  return 0;
}
