// Quickstart: build an IVF-PQ index over a synthetic SIFT-like corpus, stand
// up the DRIM-ANN engine on a simulated UPMEM platform, and compare its
// recall and modeled throughput against the Faiss-style CPU baseline.
//
//   ./example_quickstart [num_base] [num_queries]

#include <cstdio>
#include <cstdlib>

#include "baseline/cpu_ivfpq.hpp"
#include "common/timer.hpp"
#include "core/flat_search.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

int main(int argc, char** argv) {
  using namespace drim;

  SyntheticSpec spec;
  spec.num_base = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  spec.num_queries = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;
  spec.num_learn = 10'000;
  spec.num_components = 64;

  std::printf("[1/5] generating SIFT-like dataset: %zu base, %zu queries, dim %zu\n",
              spec.num_base, spec.num_queries, spec.dim);
  SyntheticData dataset = make_sift_like(spec);

  std::printf("[2/5] training IVF-PQ index (nlist=128, M=32, CB=256)\n");
  IvfPqParams params;
  params.nlist = 128;
  params.pq.m = 32;
  params.pq.cb_entries = 256;
  IvfPqIndex index;
  index.train(dataset.learn, params);
  index.add(dataset.base);

  const std::size_t k = 10;
  const std::size_t nprobe = 16;

  std::printf("[3/5] computing exact ground truth\n");
  const auto ground_truth = flat_search_all(dataset.base, dataset.queries, k);

  std::printf("[4/5] CPU baseline search (nprobe=%zu)\n", nprobe);
  CpuIvfPq cpu(index);
  CpuSearchStats cpu_stats;
  const auto cpu_results = cpu.search_batch(dataset.queries, k, nprobe, &cpu_stats);
  const double cpu_recall = mean_recall_at_k(cpu_results, ground_truth, k);

  std::printf("[5/5] DRIM-ANN on simulated UPMEM (64 DPUs)\n");
  DrimEngineOptions opts;
  opts.pim.num_dpus = 64;
  opts.layout.split_threshold = 512;
  opts.heat_nprobe = nprobe;
  DrimAnnEngine engine(index, dataset.learn, opts);

  DrimSearchStats drim_stats;
  const auto drim_results = engine.search(dataset.queries, k, nprobe, &drim_stats);
  const double drim_recall = mean_recall_at_k(drim_results, ground_truth, k);

  std::printf("\n=== results ===\n");
  std::printf("CPU baseline : recall@10 %.3f, wall %.3f s (%.0f QPS measured)\n",
              cpu_recall, cpu_stats.wall_seconds, cpu_stats.qps());
  std::printf("DRIM-ANN     : recall@10 %.3f, modeled %.4f s (%.0f QPS modeled)\n",
              drim_recall, drim_stats.total_seconds, drim_stats.qps());
  std::printf("DRIM-ANN DPU busy %.4f s over %zu batches, %zu tasks, %.1f J\n",
              drim_stats.dpu_busy_seconds, drim_stats.batches, drim_stats.tasks,
              drim_stats.energy_joules);
  std::printf("phase DPU-seconds: RC %.4f LC %.4f DC %.4f TS %.4f AUX %.4f\n",
              drim_stats.phase_dpu_seconds[static_cast<int>(Phase::RC)],
              drim_stats.phase_dpu_seconds[static_cast<int>(Phase::LC)],
              drim_stats.phase_dpu_seconds[static_cast<int>(Phase::DC)],
              drim_stats.phase_dpu_seconds[static_cast<int>(Phase::TS)],
              drim_stats.phase_dpu_seconds[static_cast<int>(Phase::AUX)]);
  return 0;
}
