// Recommendation-system scenario (the paper's other motivating application):
// a SIFT-style item-embedding catalog served under heavy query skew, with
// popularity drifting between "days". Demonstrates:
//  - heat estimation from a sample query set (Section IV-A),
//  - how stale heat degrades balance when popularity drifts, and how
//    re-generating the layout recovers it,
//  - the OPQ index variant as a drop-in for higher recall at equal M/CB.
//
//   ./example_recommendation [num_items]

#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/flat_search.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

using namespace drim;

namespace {

/// Day-1 queries with drifted popularity: drawn near uniformly-random catalog
/// items (popularity ~ cluster size) instead of the day-0 Zipf-rank skew, so
/// the hot set moves while the corpus stays fixed.
FloatMatrix drifted_queries(const SyntheticData& catalog, std::size_t count,
                            std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t dim = catalog.base.dim();
  FloatMatrix out(count, dim);
  for (std::size_t i = 0; i < count; ++i) {
    const auto pick = static_cast<std::size_t>(rng.next_below(catalog.base.count()));
    auto row = out.row(i);
    catalog.base.row_as_float(pick, row);
    for (auto& x : row) {
      x = std::min(255.0f, std::max(0.0f, x + static_cast<float>(rng.gaussian()) * 4.0f));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SyntheticSpec spec;
  spec.num_base = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40'000;
  spec.num_queries = 192;
  spec.num_learn = 8'000;
  spec.num_components = 64;
  spec.query_skew = 1.1;

  std::printf("catalog: %zu item embeddings (D=%zu), Zipf(%.1f) popularity\n",
              spec.num_base, spec.dim, spec.query_skew);
  SyntheticData catalog = make_sift_like(spec);
  const std::size_t k = 10, nprobe = 24;
  const auto gt = flat_search_all(catalog.base, catalog.queries, k);

  // ---- PQ vs OPQ variant at identical compression ----
  std::printf("\ntraining PQ and OPQ variants (nlist=256, M=32, CB=128)...\n");
  IvfPqParams params;
  params.nlist = 256;
  params.pq.m = 32;
  params.pq.cb_entries = 128;

  IvfPqIndex pq_index;
  pq_index.train(catalog.learn, params);
  pq_index.add(catalog.base);

  params.variant = PQVariant::kOPQ;
  params.opq_iters = 5;
  IvfPqIndex opq_index;
  opq_index.train(catalog.learn, params);
  opq_index.add(catalog.base);

  DrimEngineOptions opts;
  opts.pim.num_dpus = 128;
  opts.heat_nprobe = nprobe;

  for (const auto& [name, index] :
       {std::pair<const char*, const IvfPqIndex*>{"PQ ", &pq_index},
        std::pair<const char*, const IvfPqIndex*>{"OPQ", &opq_index}}) {
    DrimAnnEngine engine(*index, catalog.learn, opts);
    DrimSearchStats stats;
    const auto results = engine.search(catalog.queries, k, nprobe, &stats);
    std::printf("  %s: recall@10 %.3f, %6.0f QPS modeled, imbalance %.2f\n", name,
                mean_recall_at_k(results, gt, k), stats.qps(),
                imbalance_factor(stats.per_dpu_seconds));
  }

  // ---- popularity drift ----
  std::printf("\nsimulating popularity drift (layout heat trained on day-0 "
              "queries)...\n");
  DrimAnnEngine engine(pq_index, catalog.learn, opts);

  DrimSearchStats day0;
  engine.search(catalog.queries, k, nprobe, &day0);
  std::printf("  day 0 (heat matches traffic)  : %6.0f QPS, imbalance %.2f\n",
              day0.qps(), imbalance_factor(day0.per_dpu_seconds));

  const FloatMatrix drifted = drifted_queries(catalog, spec.num_queries, 777);
  DrimSearchStats day1;
  engine.search(drifted, k, nprobe, &day1);
  std::printf("  day 1 (stale heat, drifted)   : %6.0f QPS, imbalance %.2f\n",
              day1.qps(), imbalance_factor(day1.per_dpu_seconds));

  // Rebuild the layout with fresh heat: pass the drifted queries as the new
  // sample set.
  FloatMatrix sample(drifted.count(), drifted.dim());
  for (std::size_t i = 0; i < drifted.count(); ++i) {
    std::copy_n(drifted.row(i).data(), drifted.dim(), sample.row(i).data());
  }
  DrimAnnEngine refreshed(pq_index, sample, opts);
  DrimSearchStats day1r;
  refreshed.search(drifted, k, nprobe, &day1r);
  std::printf("  day 1 (layout re-generated)   : %6.0f QPS, imbalance %.2f\n",
              day1r.qps(), imbalance_factor(day1r.per_dpu_seconds));

  std::printf("\nnote: offline layout generation is cheap (seconds) relative to\n"
              "index training, so refreshing heat daily keeps DPUs balanced.\n");
  return 0;
}
