file(REMOVE_RECURSE
  "CMakeFiles/example_dse_tuning.dir/dse_tuning.cpp.o"
  "CMakeFiles/example_dse_tuning.dir/dse_tuning.cpp.o.d"
  "example_dse_tuning"
  "example_dse_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dse_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
