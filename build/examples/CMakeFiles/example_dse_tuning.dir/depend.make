# Empty dependencies file for example_dse_tuning.
# This may be replaced when dependencies are built.
