# Empty dependencies file for example_serving_tail_latency.
# This may be replaced when dependencies are built.
