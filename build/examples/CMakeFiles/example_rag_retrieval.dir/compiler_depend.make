# Empty compiler generated dependencies file for example_rag_retrieval.
# This may be replaced when dependencies are built.
