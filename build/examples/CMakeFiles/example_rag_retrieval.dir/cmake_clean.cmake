file(REMOVE_RECURSE
  "CMakeFiles/example_rag_retrieval.dir/rag_retrieval.cpp.o"
  "CMakeFiles/example_rag_retrieval.dir/rag_retrieval.cpp.o.d"
  "example_rag_retrieval"
  "example_rag_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rag_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
