# Empty dependencies file for drim.
# This may be replaced when dependencies are built.
