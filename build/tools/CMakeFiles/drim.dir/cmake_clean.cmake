file(REMOVE_RECURSE
  "CMakeFiles/drim.dir/drim_cli.cpp.o"
  "CMakeFiles/drim.dir/drim_cli.cpp.o.d"
  "drim"
  "drim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
