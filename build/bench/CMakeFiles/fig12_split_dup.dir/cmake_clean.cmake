file(REMOVE_RECURSE
  "CMakeFiles/fig12_split_dup.dir/fig12_split_dup.cpp.o"
  "CMakeFiles/fig12_split_dup.dir/fig12_split_dup.cpp.o.d"
  "CMakeFiles/fig12_split_dup.dir/support/harness.cpp.o"
  "CMakeFiles/fig12_split_dup.dir/support/harness.cpp.o.d"
  "fig12_split_dup"
  "fig12_split_dup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_split_dup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
