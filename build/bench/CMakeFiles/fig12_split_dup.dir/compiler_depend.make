# Empty compiler generated dependencies file for fig12_split_dup.
# This may be replaced when dependencies are built.
