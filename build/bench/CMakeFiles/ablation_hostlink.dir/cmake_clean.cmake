file(REMOVE_RECURSE
  "CMakeFiles/ablation_hostlink.dir/ablation_hostlink.cpp.o"
  "CMakeFiles/ablation_hostlink.dir/ablation_hostlink.cpp.o.d"
  "CMakeFiles/ablation_hostlink.dir/support/harness.cpp.o"
  "CMakeFiles/ablation_hostlink.dir/support/harness.cpp.o.d"
  "ablation_hostlink"
  "ablation_hostlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hostlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
