# Empty compiler generated dependencies file for ablation_cl_placement.
# This may be replaced when dependencies are built.
