file(REMOVE_RECURSE
  "CMakeFiles/ablation_cl_placement.dir/ablation_cl_placement.cpp.o"
  "CMakeFiles/ablation_cl_placement.dir/ablation_cl_placement.cpp.o.d"
  "CMakeFiles/ablation_cl_placement.dir/support/harness.cpp.o"
  "CMakeFiles/ablation_cl_placement.dir/support/harness.cpp.o.d"
  "ablation_cl_placement"
  "ablation_cl_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cl_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
