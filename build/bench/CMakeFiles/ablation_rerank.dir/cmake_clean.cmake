file(REMOVE_RECURSE
  "CMakeFiles/ablation_rerank.dir/ablation_rerank.cpp.o"
  "CMakeFiles/ablation_rerank.dir/ablation_rerank.cpp.o.d"
  "CMakeFiles/ablation_rerank.dir/support/harness.cpp.o"
  "CMakeFiles/ablation_rerank.dir/support/harness.cpp.o.d"
  "ablation_rerank"
  "ablation_rerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
