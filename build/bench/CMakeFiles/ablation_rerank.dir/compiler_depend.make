# Empty compiler generated dependencies file for ablation_rerank.
# This may be replaced when dependencies are built.
