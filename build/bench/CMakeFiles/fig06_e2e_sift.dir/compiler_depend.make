# Empty compiler generated dependencies file for fig06_e2e_sift.
# This may be replaced when dependencies are built.
