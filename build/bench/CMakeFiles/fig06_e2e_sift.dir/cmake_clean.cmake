file(REMOVE_RECURSE
  "CMakeFiles/fig06_e2e_sift.dir/fig06_e2e_sift.cpp.o"
  "CMakeFiles/fig06_e2e_sift.dir/fig06_e2e_sift.cpp.o.d"
  "CMakeFiles/fig06_e2e_sift.dir/support/harness.cpp.o"
  "CMakeFiles/fig06_e2e_sift.dir/support/harness.cpp.o.d"
  "fig06_e2e_sift"
  "fig06_e2e_sift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_e2e_sift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
