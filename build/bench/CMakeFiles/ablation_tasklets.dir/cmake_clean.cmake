file(REMOVE_RECURSE
  "CMakeFiles/ablation_tasklets.dir/ablation_tasklets.cpp.o"
  "CMakeFiles/ablation_tasklets.dir/ablation_tasklets.cpp.o.d"
  "CMakeFiles/ablation_tasklets.dir/support/harness.cpp.o"
  "CMakeFiles/ablation_tasklets.dir/support/harness.cpp.o.d"
  "ablation_tasklets"
  "ablation_tasklets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tasklets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
