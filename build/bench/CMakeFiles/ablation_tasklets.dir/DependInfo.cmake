
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_tasklets.cpp" "bench/CMakeFiles/ablation_tasklets.dir/ablation_tasklets.cpp.o" "gcc" "bench/CMakeFiles/ablation_tasklets.dir/ablation_tasklets.cpp.o.d"
  "/root/repo/bench/support/harness.cpp" "bench/CMakeFiles/ablation_tasklets.dir/support/harness.cpp.o" "gcc" "bench/CMakeFiles/ablation_tasklets.dir/support/harness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drimann.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
