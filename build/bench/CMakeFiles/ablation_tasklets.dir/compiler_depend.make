# Empty compiler generated dependencies file for ablation_tasklets.
# This may be replaced when dependencies are built.
