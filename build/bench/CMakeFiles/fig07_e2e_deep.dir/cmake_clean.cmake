file(REMOVE_RECURSE
  "CMakeFiles/fig07_e2e_deep.dir/fig07_e2e_deep.cpp.o"
  "CMakeFiles/fig07_e2e_deep.dir/fig07_e2e_deep.cpp.o.d"
  "CMakeFiles/fig07_e2e_deep.dir/support/harness.cpp.o"
  "CMakeFiles/fig07_e2e_deep.dir/support/harness.cpp.o.d"
  "fig07_e2e_deep"
  "fig07_e2e_deep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_e2e_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
