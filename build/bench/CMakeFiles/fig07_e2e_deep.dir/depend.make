# Empty dependencies file for fig07_e2e_deep.
# This may be replaced when dependencies are built.
