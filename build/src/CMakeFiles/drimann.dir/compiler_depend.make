# Empty compiler generated dependencies file for drimann.
# This may be replaced when dependencies are built.
