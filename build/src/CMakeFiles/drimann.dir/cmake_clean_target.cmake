file(REMOVE_RECURSE
  "libdrimann.a"
)
