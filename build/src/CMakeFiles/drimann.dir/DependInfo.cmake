
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cpu_ivfpq.cpp" "src/CMakeFiles/drimann.dir/baseline/cpu_ivfpq.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/baseline/cpu_ivfpq.cpp.o.d"
  "/root/repo/src/common/io.cpp" "src/CMakeFiles/drimann.dir/common/io.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/common/io.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/drimann.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/drimann.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/common/stats.cpp.o.d"
  "/root/repo/src/core/distances.cpp" "src/CMakeFiles/drimann.dir/core/distances.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/core/distances.cpp.o.d"
  "/root/repo/src/core/dpq.cpp" "src/CMakeFiles/drimann.dir/core/dpq.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/core/dpq.cpp.o.d"
  "/root/repo/src/core/flat_search.cpp" "src/CMakeFiles/drimann.dir/core/flat_search.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/core/flat_search.cpp.o.d"
  "/root/repo/src/core/ivf.cpp" "src/CMakeFiles/drimann.dir/core/ivf.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/core/ivf.cpp.o.d"
  "/root/repo/src/core/kmeans.cpp" "src/CMakeFiles/drimann.dir/core/kmeans.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/core/kmeans.cpp.o.d"
  "/root/repo/src/core/matrix.cpp" "src/CMakeFiles/drimann.dir/core/matrix.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/core/matrix.cpp.o.d"
  "/root/repo/src/core/opq.cpp" "src/CMakeFiles/drimann.dir/core/opq.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/core/opq.cpp.o.d"
  "/root/repo/src/core/pq.cpp" "src/CMakeFiles/drimann.dir/core/pq.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/core/pq.cpp.o.d"
  "/root/repo/src/core/rerank.cpp" "src/CMakeFiles/drimann.dir/core/rerank.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/core/rerank.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/CMakeFiles/drimann.dir/core/serialize.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/core/serialize.cpp.o.d"
  "/root/repo/src/core/topk.cpp" "src/CMakeFiles/drimann.dir/core/topk.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/core/topk.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/drimann.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/recall.cpp" "src/CMakeFiles/drimann.dir/data/recall.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/data/recall.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/drimann.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/drim/engine.cpp" "src/CMakeFiles/drimann.dir/drim/engine.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/drim/engine.cpp.o.d"
  "/root/repo/src/drim/kernels.cpp" "src/CMakeFiles/drimann.dir/drim/kernels.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/drim/kernels.cpp.o.d"
  "/root/repo/src/drim/layout.cpp" "src/CMakeFiles/drimann.dir/drim/layout.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/drim/layout.cpp.o.d"
  "/root/repo/src/drim/pim_index.cpp" "src/CMakeFiles/drimann.dir/drim/pim_index.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/drim/pim_index.cpp.o.d"
  "/root/repo/src/drim/scheduler.cpp" "src/CMakeFiles/drimann.dir/drim/scheduler.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/drim/scheduler.cpp.o.d"
  "/root/repo/src/drim/square_lut.cpp" "src/CMakeFiles/drimann.dir/drim/square_lut.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/drim/square_lut.cpp.o.d"
  "/root/repo/src/model/dse.cpp" "src/CMakeFiles/drimann.dir/model/dse.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/model/dse.cpp.o.d"
  "/root/repo/src/model/gp.cpp" "src/CMakeFiles/drimann.dir/model/gp.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/model/gp.cpp.o.d"
  "/root/repo/src/model/perf_model.cpp" "src/CMakeFiles/drimann.dir/model/perf_model.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/model/perf_model.cpp.o.d"
  "/root/repo/src/pim/dpu.cpp" "src/CMakeFiles/drimann.dir/pim/dpu.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/pim/dpu.cpp.o.d"
  "/root/repo/src/pim/perf_counters.cpp" "src/CMakeFiles/drimann.dir/pim/perf_counters.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/pim/perf_counters.cpp.o.d"
  "/root/repo/src/pim/pim_system.cpp" "src/CMakeFiles/drimann.dir/pim/pim_system.cpp.o" "gcc" "src/CMakeFiles/drimann.dir/pim/pim_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
