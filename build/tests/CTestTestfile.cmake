# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/drim_tests[1]_include.cmake")
add_test(cli_end_to_end "/usr/bin/cmake" "-DDRIM_BIN=/root/repo/build/tools/drim" "-DWORK_DIR=/root/repo/build/tests/cli_smoke" "-P" "/root/repo/tests/cli_smoke.cmake")
set_tests_properties(cli_end_to_end PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;12;add_test;/root/repo/tests/CMakeLists.txt;0;")
