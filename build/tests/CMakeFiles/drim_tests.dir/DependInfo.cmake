
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cl_on_pim.cpp" "tests/CMakeFiles/drim_tests.dir/test_cl_on_pim.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_cl_on_pim.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/drim_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_distances.cpp" "tests/CMakeFiles/drim_tests.dir/test_distances.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_distances.cpp.o.d"
  "/root/repo/tests/test_dse.cpp" "tests/CMakeFiles/drim_tests.dir/test_dse.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_dse.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/drim_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_engine_edge.cpp" "tests/CMakeFiles/drim_tests.dir/test_engine_edge.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_engine_edge.cpp.o.d"
  "/root/repo/tests/test_fullstack_property.cpp" "tests/CMakeFiles/drim_tests.dir/test_fullstack_property.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_fullstack_property.cpp.o.d"
  "/root/repo/tests/test_incremental_policy.cpp" "tests/CMakeFiles/drim_tests.dir/test_incremental_policy.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_incremental_policy.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/drim_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_ivf.cpp" "tests/CMakeFiles/drim_tests.dir/test_ivf.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_ivf.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/drim_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_kmeans.cpp" "tests/CMakeFiles/drim_tests.dir/test_kmeans.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_kmeans.cpp.o.d"
  "/root/repo/tests/test_layout.cpp" "tests/CMakeFiles/drim_tests.dir/test_layout.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_layout.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/drim_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_opq_dpq.cpp" "tests/CMakeFiles/drim_tests.dir/test_opq_dpq.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_opq_dpq.cpp.o.d"
  "/root/repo/tests/test_perf_model.cpp" "tests/CMakeFiles/drim_tests.dir/test_perf_model.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_perf_model.cpp.o.d"
  "/root/repo/tests/test_pim.cpp" "tests/CMakeFiles/drim_tests.dir/test_pim.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_pim.cpp.o.d"
  "/root/repo/tests/test_pim_index.cpp" "tests/CMakeFiles/drim_tests.dir/test_pim_index.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_pim_index.cpp.o.d"
  "/root/repo/tests/test_pq.cpp" "tests/CMakeFiles/drim_tests.dir/test_pq.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_pq.cpp.o.d"
  "/root/repo/tests/test_recall.cpp" "tests/CMakeFiles/drim_tests.dir/test_recall.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_recall.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/drim_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/drim_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_serialize_rerank.cpp" "tests/CMakeFiles/drim_tests.dir/test_serialize_rerank.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_serialize_rerank.cpp.o.d"
  "/root/repo/tests/test_square_lut.cpp" "tests/CMakeFiles/drim_tests.dir/test_square_lut.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_square_lut.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/drim_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_topk.cpp" "tests/CMakeFiles/drim_tests.dir/test_topk.cpp.o" "gcc" "tests/CMakeFiles/drim_tests.dir/test_topk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/drimann.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
