# Empty compiler generated dependencies file for drim_tests.
# This may be replaced when dependencies are built.
