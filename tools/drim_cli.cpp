// drim — command-line front end for the DRIM-ANN library.
//
//   drim gen    --out-base base.bvecs --out-queries q.fvecs --out-learn l.fvecs
//               [--n 50000] [--queries 200] [--dim 128] [--deep] [--seed 42]
//   drim build  --base base.bvecs --learn l.fvecs --out index.drim
//               [--nlist 128] [--m 32] [--cb 256] [--variant pq|opq|dpq]
//   drim info   --index index.drim
//   drim search --index index.drim --queries q.fvecs [--base base.bvecs]
//               [--k 10] [--nprobe 16] [--gt gt.ivecs]
//               [--backend cpu|drim] [--platform sim|analytic] [--dpus 64]
//               [--pipeline-depth 2] [--batch-size 0] [--rerank 0]
//               [--fuse-width 1] [--precision full|q4]
//               [--shards 1] [--shard-replication 0.1]
//               [--trace out.json]
//   drim gt     --base base.bvecs --queries q.fvecs --out gt.ivecs [--k 100]
//   drim serve  --index index.drim --queries q.fvecs [--qps 1000]
//               [--requests 1024] [--max-batch 32] [--max-wait-us 0]
//               [--slo-ms 0] [--arrivals poisson|onoff] [--skew 0]
//               [--k 10] [--nprobe 16] [--dpus 64] [--seed 42]
//               [--backend cpu|drim] [--platform sim|analytic]
//               [--pipeline-depth 2] [--no-admission] [--flush-every 4]
//               [--fuse-width 1] [--precision full|q4] [--min-rung 0]
//               [--shards 1] [--shard-replication 0.1]
//               [--trace out.json] [--metrics out.csv|out.json]
//               [--snapshot-ms 0]
//               [--update-trace 0] [--update-skew 0] [--update-inserts 0.5]
//               [--publish-every 8] [--relayout-every 0] [--split-threshold 0]
//
// --shards N serves the index from an N-shard cluster tier (drim backend
// only): clusters are partitioned across N PIM nodes by the heat-balancing
// planner, the hottest --shard-replication fraction is replicated, and a
// front-end router dispatches each query to the owners of its probed
// clusters, merging partial top-k lists. serve prints per-shard health.
//
// search runs the CPU baseline by default; --backend drim (or the legacy
// --pim alias) runs the DRIM engine and prints its modeled timing report.
// --platform picks the PIM platform under the drim backend: `sim` is the
// byte-level functional simulator, `analytic` charges the same cost tables
// without simulating MRAM (fast at paper-scale DPU counts; identical
// neighbors via the host-exact replay). --rerank R searches R candidates and
// re-ranks them exactly (requires --base). --pipeline-depth D keeps up to D
// batches in flight so host-link transfers overlap DPU compute (1 = serial;
// results are bit-identical at every depth, only the modeled timeline moves).
// --fuse-width G fuses up to G co-cluster tasks per DPU so each cluster's
// codes stream from MRAM once per batch (results bit-identical at any width;
// 1 keeps the literal per-task kernels and their exact modeled times).
//
// --precision picks the rung of the quantization ladder (drim backend only):
// `full` is the stock 8-bit PQ path, `q4` runs the packed 4-bit codes with
// the host exact-rerank tail — faster at lower recall. --min-rung 1 (serve)
// turns on degrade-before-shed admission: requests whose full-precision
// latency prediction blows the SLO are retried against the q4-rung
// prediction and served degraded instead of shed when it fits. Either flag
// builds the engine's q4 tables (enable_q4).
//
// serve replays an open-loop request trace (timestamped arrivals drawn from
// the query file) through the online serving runtime — dynamic batching,
// admission control, tail-latency accounting — on any backend (default
// drim). --max-wait-us/--slo-ms default to multiples of the backend's
// Eq. 15 batch-time estimate (printed) when left at 0.
//
// --update-trace R interleaves R mutations per search request (inserts drawn
// from the query pool, deletes Zipf-skewed by --update-skew with insert
// fraction --update-inserts) through the mutable-index writer; snapshots
// publish to the backend every --publish-every batches, the layout re-plans
// from observed traffic every --relayout-every batches (0 = never), and
// --split-threshold T splits any cluster whose live size exceeds T.
//
// --trace writes a Chrome-trace / Perfetto JSON timeline of the run (device
// phase spans, host phases, serve-layer events); open it at
// ui.perfetto.dev. --metrics (serve only) writes periodic runtime snapshots
// (queue depth, EWMA batch time, shed rate) as CSV or JSON, sampled every
// --snapshot-ms of virtual time.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "backend/backend_factory.hpp"
#include "baseline/cpu_ivfpq.hpp"
#include "cluster/cluster_backend.hpp"
#include "common/io.hpp"
#include "common/timer.hpp"
#include "core/flat_search.hpp"
#include "core/precision.hpp"
#include "core/rerank.hpp"
#include "core/serialize.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"
#include "obs/trace.hpp"
#include "serve/runtime.hpp"

namespace {

using namespace drim;

/// Minimal --key value argument map.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "1";  // boolean flag
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  /// Strictly-parsed integer knob: the value must be a whole non-negative
  /// number inside [min_value, max_value]. Garbage, trailing junk, negatives,
  /// and out-of-range values exit 2 at parse time with an error naming the
  /// flag and the legal range, instead of failing deep inside the engine.
  std::size_t get_size_checked(const std::string& key, std::size_t fallback,
                               std::size_t min_value, std::size_t max_value) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& text = it->second;
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    const bool numeric = end != text.c_str() && end != nullptr && *end == '\0' &&
                         errno == 0 && text.find('-') == std::string::npos;
    if (!numeric || parsed < min_value || parsed > max_value) {
      std::fprintf(stderr,
                   "invalid --%s value '%s': expected an integer in [%zu, %zu]\n",
                   key.c_str(), text.c_str(), min_value, max_value);
      std::exit(2);
    }
    return static_cast<std::size_t>(parsed);
  }
  /// Strictly-parsed floating-point knob with the same contract.
  double get_double_checked(const std::string& key, double fallback,
                            double min_value, double max_value) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& text = it->second;
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || end == nullptr || *end != '\0' ||
        !(parsed >= min_value && parsed <= max_value)) {
      std::fprintf(stderr,
                   "invalid --%s value '%s': expected a number in [%g, %g]\n",
                   key.c_str(), text.c_str(), min_value, max_value);
      std::exit(2);
    }
    return parsed;
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

ByteDataset load_base(const std::string& path) {
  const auto file = read_bvecs(path);
  ByteDataset base(file.count, file.dim);
  std::copy(file.data.begin(), file.data.end(), base.data());
  return base;
}

FloatMatrix load_floats(const std::string& path) {
  const auto file = read_fvecs(path);
  FloatMatrix m(file.count, file.dim);
  std::copy(file.data.begin(), file.data.end(), m.data());
  return m;
}

void write_base(const std::string& path, const ByteDataset& base) {
  VecFile<std::uint8_t> file;
  file.count = base.count();
  file.dim = base.dim();
  file.data.assign(base.data(), base.data() + base.count() * base.dim());
  write_bvecs(path, file);
}

void write_floats(const std::string& path, const FloatMatrix& m) {
  VecFile<float> file;
  file.count = m.count();
  file.dim = m.dim();
  file.data.assign(m.data(), m.data() + m.count() * m.dim());
  write_fvecs(path, file);
}

int cmd_gen(const Args& args) {
  SyntheticSpec spec;
  spec.num_base = args.get_size("n", 50'000);
  spec.num_queries = args.get_size("queries", 200);
  spec.num_learn = args.get_size("learn", spec.num_base / 5);
  spec.dim = args.get_size("dim", 128);
  spec.num_components = args.get_size("components", 64);
  spec.seed = args.get_size("seed", 42);

  const SyntheticData data =
      args.has("deep") ? make_deep_like(spec) : make_sift_like(spec);
  write_base(args.require("out-base"), data.base);
  write_floats(args.require("out-queries"), data.queries);
  write_floats(args.require("out-learn"), data.learn);
  std::printf("wrote %zu base (dim %zu), %zu queries, %zu learn vectors\n",
              data.base.count(), data.base.dim(), data.queries.count(),
              data.learn.count());
  return 0;
}

int cmd_build(const Args& args) {
  const ByteDataset base = load_base(args.require("base"));
  const FloatMatrix learn = load_floats(args.require("learn"));

  IvfPqParams params;
  params.nlist = args.get_size("nlist", 128);
  params.pq.m = args.get_size("m", 32);
  params.pq.cb_entries = args.get_size("cb", 256);
  const std::string variant = args.get("variant", "pq");
  if (variant == "opq") {
    params.variant = PQVariant::kOPQ;
  } else if (variant == "dpq") {
    params.variant = PQVariant::kDPQ;
  } else if (variant != "pq") {
    std::fprintf(stderr, "unknown variant %s (pq|opq|dpq)\n", variant.c_str());
    return 2;
  }

  WallTimer timer;
  IvfPqIndex index;
  index.train(learn, params);
  const double train_s = timer.seconds();
  timer.reset();
  index.add(base);
  std::printf("trained in %.1fs, added %zu vectors in %.1fs\n", train_s,
              index.ntotal(), timer.seconds());
  save_index(index, args.require("out"));
  std::printf("saved index to %s\n", args.get("out").c_str());
  return 0;
}

int cmd_info(const Args& args) {
  const IvfPqIndex index = load_index(args.require("index"));
  const char* variants[] = {"PQ", "OPQ", "DPQ"};
  std::printf("DRIM index: %zu vectors, dim %zu\n", index.ntotal(), index.dim());
  std::printf("  variant    : %s\n", variants[static_cast<int>(index.variant())]);
  std::printf("  nlist      : %zu\n", index.nlist());
  std::printf("  M x CB     : %zu x %zu (%zu-byte codes)\n", index.pq().m(),
              index.pq().cb_entries(), index.code_size());
  const auto sizes = index.list_sizes();
  std::size_t mn = SIZE_MAX, mx = 0, empty = 0;
  for (std::size_t s : sizes) {
    mn = std::min(mn, s);
    mx = std::max(mx, s);
    empty += (s == 0);
  }
  std::printf("  cluster sz : min %zu / max %zu, %zu empty\n", mn, mx, empty);
  return 0;
}

int cmd_gt(const Args& args) {
  const ByteDataset base = load_base(args.require("base"));
  const FloatMatrix queries = load_floats(args.require("queries"));
  const std::size_t k = args.get_size("k", 100);
  const auto gt = flat_search_all(base, queries, k);

  VecFile<std::int32_t> out;
  out.count = gt.size();
  out.dim = k;
  for (const auto& row : gt) {
    for (std::size_t i = 0; i < k; ++i) {
      out.data.push_back(i < row.size() ? static_cast<std::int32_t>(row[i].id) : -1);
    }
  }
  write_ivecs(args.require("out"), out);
  std::printf("wrote exact top-%zu for %zu queries\n", k, gt.size());
  return 0;
}

std::vector<std::vector<Neighbor>> load_gt(const std::string& path) {
  const auto file = read_ivecs(path);
  std::vector<std::vector<Neighbor>> gt(file.count);
  for (std::size_t q = 0; q < file.count; ++q) {
    for (std::size_t i = 0; i < file.dim; ++i) {
      const std::int32_t id = file.row(q)[i];
      if (id >= 0) gt[q].push_back({static_cast<float>(i), static_cast<std::uint32_t>(id)});
    }
  }
  return gt;
}

/// --precision {full,q4}: the ladder rung requests run at (search: every
/// query; serve: the trace default). Unknown values exit 2 at parse time.
Precision precision_from_args(const Args& args) {
  const std::string text = args.get("precision", "full");
  try {
    return parse_precision(text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "invalid --precision value '%s': expected full|q4\n",
                 text.c_str());
    std::exit(2);
  }
}

/// --min-rung {0,1}: the cheapest rung admission control may degrade a
/// request to under predicted SLO violation (0 = never degrade, shed only).
std::size_t min_rung_from_args(const Args& args) {
  return args.get_size_checked("min-rung", 0, 0, 1);
}

/// Backend selection shared by search and serve: --backend {drim,cpu} with
/// the legacy --pim boolean as an alias for --backend drim; --platform
/// {sim,analytic} picks the PIM platform under the drim backend.
std::unique_ptr<AnnBackend> backend_from_args(const Args& args, const IvfPqIndex& index,
                                              const FloatMatrix& sample_queries,
                                              std::size_t nprobe,
                                              const std::string& default_backend) {
  const BackendKind kind = parse_backend_kind(
      args.get("backend", args.has("pim") ? "drim" : default_backend));
  DrimEngineOptions opts;
  opts.pim.num_dpus = args.get_size_checked("dpus", 64, 1, 1'000'000);
  opts.heat_nprobe = nprobe;
  opts.platform = parse_pim_platform(args.get("platform", "sim"));
  opts.pipeline_depth =
      args.get_size_checked("pipeline-depth", opts.pipeline_depth, 1, 64);
  opts.batch_size = args.get_size_checked("batch-size", opts.batch_size, 0, 1 << 20);
  // Cluster-major task fusion width (DESIGN.md §16); 1 keeps the literal
  // per-task kernels, wider amortizes each cluster's MRAM code stream across
  // co-cluster queries of a batch (bounded by WRAM; the engine validates).
  opts.fuse_width = args.get_size_checked("fuse-width", opts.fuse_width, 1, 64);
  // Any request for the cheap rung — static (--precision q4) or adaptive
  // (--min-rung >= 1) — needs the engine's q4 tables built.
  opts.enable_q4 = precision_from_args(args) == Precision::kQ4 ||
                   min_rung_from_args(args) >= 1;
  CpuBackendOptions cpu_opts;
  cpu_opts.pipeline_depth = opts.pipeline_depth;
  const std::size_t shards = args.get_size_checked("shards", 1, 1, 4096);
  if (shards > 1 || args.has("shard-replication")) {
    cluster::ClusterOptions copts;
    copts.num_shards = shards;
    copts.replication_fraction = args.get_double_checked(
        "shard-replication", copts.replication_fraction, 0.0, 1.0);
    return cluster::make_cluster_backend(kind, index, sample_queries, opts, copts,
                                         cpu_opts);
  }
  return make_backend(kind, index, sample_queries, opts, cpu_opts);
}

/// Print the cluster tier's per-shard health table (serve, sharded runs).
void print_shard_health(const AnnBackend& backend) {
  const std::vector<ShardHealth> health = backend.shard_health();
  if (health.empty()) return;
  std::printf("shard health:\n");
  for (const ShardHealth& h : health) {
    std::printf("  shard %u%s: %zu queries, %zu tasks, %zu queued, "
                "%zu fallbacks, busy %.3f ms\n",
                h.shard, h.draining ? " (draining)" : "", h.dispatched_queries,
                h.dispatched_tasks, h.queue_tasks, h.fallback_tasks,
                h.busy_seconds * 1e3);
  }
}

int cmd_search(const Args& args) {
  const IvfPqIndex index = load_index(args.require("index"));
  const FloatMatrix queries = load_floats(args.require("queries"));
  const std::size_t k = args.get_size("k", 10);
  const std::size_t nprobe = args.get_size("nprobe", 16);
  const std::size_t rerank = args.get_size("rerank", 0);
  const std::size_t fetch_k = rerank > 0 ? rerank : k;

  std::unique_ptr<AnnBackend> backend =
      backend_from_args(args, index, queries, nprobe, "cpu");
  obs::TraceRecorder recorder;
  if (args.has("trace")) backend->set_trace(&recorder);
  const Precision rung = precision_from_args(args);
  std::vector<std::vector<Neighbor>> results;
  if (rung == Precision::kFull) {
    results = backend->search(queries, fetch_k, nprobe);
  } else {
    // Cheap-rung search goes through the streaming seam: the precision-aware
    // enqueue is per-query, so every backend (drim, cluster router) carries
    // the rung; backends without a ladder ignore it and serve full.
    backend->reset_stream();
    std::vector<std::uint32_t> handles;
    handles.reserve(queries.count());
    for (std::size_t qi = 0; qi < queries.count(); ++qi) {
      handles.push_back(backend->enqueue(queries.row(qi), fetch_k, nprobe, rung));
    }
    bool pending = true;
    while (pending) {
      backend->step(0, /*flush=*/true);
      pending = false;
      for (std::uint32_t h : handles) {
        if (!backend->finished(h)) {
          pending = true;
          break;
        }
      }
    }
    results.reserve(handles.size());
    for (std::uint32_t h : handles) results.push_back(backend->take_results(h));
  }
  if (args.has("trace")) {
    recorder.write_chrome_trace_file(args.get("trace"));
    std::printf("wrote %zu trace events (%zu lanes) to %s\n",
                recorder.num_events(), recorder.num_lanes(),
                args.get("trace").c_str());
  }
  const BackendStats stats = backend->stats();
  std::printf("backend %s: modeled %.3f ms, %.0f QPS, %zu tasks in %zu batches "
              "(host wall %.3f ms)\n",
              backend->name().c_str(), stats.total_seconds * 1e3, stats.qps(),
              stats.tasks, stats.batches, stats.host_wall_seconds * 1e3);
  if (const auto* drim_backend = dynamic_cast<const DrimBackend*>(backend.get())) {
    std::printf("  energy: %.2f J modeled\n",
                drim_backend->engine_stats().energy_joules);
  }
  if (stats.dc_bytes_saved > 0) {
    std::printf("  fusion: %.2f MB of cluster re-streams avoided\n",
                static_cast<double>(stats.dc_bytes_saved) / 1e6);
  }
  print_shard_health(*backend);

  if (rerank > 0) {
    const ByteDataset base = load_base(args.require("base"));
    results = rerank_exact_all(base, queries, results, k);
    std::printf("re-ranked %zu candidates down to top-%zu exactly\n", rerank, k);
  }

  if (args.has("gt")) {
    const auto gt = load_gt(args.get("gt"));
    std::printf("recall@%zu = %.4f\n", k, mean_recall_at_k(results, gt, k));
  }

  // Print the first few result rows.
  for (std::size_t q = 0; q < std::min<std::size_t>(3, results.size()); ++q) {
    std::printf("q%zu:", q);
    for (const Neighbor& n : results[q]) std::printf(" %u", n.id);
    std::printf("\n");
  }
  return 0;
}

int cmd_serve(const Args& args) {
  const IvfPqIndex index = load_index(args.require("index"));
  const FloatMatrix pool = load_floats(args.require("queries"));
  const std::size_t k = args.get_size("k", 10);
  const std::size_t nprobe = args.get_size("nprobe", 16);

  std::unique_ptr<AnnBackend> backend =
      backend_from_args(args, index, pool, nprobe, "drim");

  serve::ServeParams sp;
  sp.batcher.max_batch = args.get_size("max-batch", 32);
  sp.flush_every = args.get_size("flush-every", 4);
  sp.admission.enabled = !args.has("no-admission");
  sp.admission.degrade_to_q4 = min_rung_from_args(args) >= 1;
  sp.snapshot_period_s = args.get_double("snapshot-ms", 0.0) * 1e-3;
  if (sp.snapshot_period_s <= 0.0 && (args.has("metrics") || args.has("trace"))) {
    sp.snapshot_period_s = 1e-3;  // something to plot when output is requested
  }
  const double est = backend->estimate_batch_seconds(sp.batcher.max_batch, nprobe, k);
  const double wait_us = args.get_double("max-wait-us", 0.0);
  sp.batcher.max_wait_s = wait_us > 0 ? wait_us * 1e-6 : 2.0 * est;
  const double slo_ms = args.get_double("slo-ms", 0.0);
  sp.admission.slo_s = slo_ms > 0 ? slo_ms * 1e-3 : 10.0 * est;

  serve::WorkloadParams wp;
  wp.offered_qps = args.get_double("qps", 1000.0);
  wp.num_requests = args.get_size("requests", 1024);
  wp.query_skew = args.get_double("skew", 0.0);
  wp.k_choices = {static_cast<std::uint32_t>(k)};
  wp.nprobe_choices = {static_cast<std::uint32_t>(nprobe)};
  wp.seed = args.get_size("seed", 42);
  const std::string arrivals = args.get("arrivals", "poisson");
  if (arrivals == "onoff") {
    wp.arrivals = serve::ArrivalProcess::kOnOff;
  } else if (arrivals != "poisson") {
    std::fprintf(stderr, "unknown arrival process %s (poisson|onoff)\n",
                 arrivals.c_str());
    return 2;
  }

  std::printf("serving %zu requests at %.0f qps (%s, skew %.2f) on backend %s\n",
              wp.num_requests, wp.offered_qps, arrivals.c_str(), wp.query_skew,
              backend->name().c_str());
  std::printf("batcher: max %zu / %.0f us wait; SLO %.3f ms (admission %s); "
              "est batch %.3f ms\n",
              sp.batcher.max_batch, sp.batcher.max_wait_s * 1e6,
              sp.admission.slo_s * 1e3, sp.admission.enabled ? "on" : "off",
              est * 1e3);

  auto trace = serve::generate_workload(pool.count(), wp);
  const Precision rung = precision_from_args(args);
  if (rung != Precision::kFull) {
    for (serve::Request& req : trace) req.precision = rung;
  }
  serve::ServingRuntime runtime(*backend, pool, sp);

  // Mutable-index serving: interleave an update trace and publish on cadence.
  const double update_rate = args.get_double("update-trace", 0.0);
  const std::size_t relayout_every = args.get_size("relayout-every", 0);
  serve::UpdateTrace update_trace;
  std::unique_ptr<IndexWriter> writer;
  serve::UpdateStream updates;
  if (update_rate > 0.0 || relayout_every > 0) {
    if (update_rate > 0.0) {
      serve::UpdateWorkloadParams up;
      up.update_rate = update_rate;
      up.delete_skew = args.get_double("update-skew", 0.0);
      up.insert_fraction = args.get_double("update-inserts", 0.5);
      up.seed = args.get_size("seed", 42) + 1;
      update_trace = serve::generate_update_trace(trace, pool, index.ntotal(), up);
    }
    WriterParams writer_params;
    writer_params.split_threshold = args.get_size("split-threshold", 0);
    writer = std::make_unique<IndexWriter>(index, writer_params);
    updates.trace = &update_trace;
    updates.writer = writer.get();
    updates.publish_every_batches = args.get_size("publish-every", 8);
    updates.relayout_every_batches = relayout_every;
    runtime.set_update_stream(&updates);
    std::printf("updates: %zu ops (%.2f/search), publish every %zu batches, "
                "re-layout every %zu, split threshold %zu\n",
                update_trace.ops.size(), update_rate,
                updates.publish_every_batches, relayout_every,
                writer_params.split_threshold);
  }

  obs::TraceRecorder recorder;
  if (args.has("trace")) runtime.set_trace(&recorder);
  const serve::ServeResult res = runtime.run(trace);
  const serve::ServeReport& r = res.report;
  if (args.has("trace")) {
    recorder.write_chrome_trace_file(args.get("trace"));
    std::printf("wrote %zu trace events (%zu lanes) to %s\n",
                recorder.num_events(), recorder.num_lanes(),
                args.get("trace").c_str());
  }
  if (args.has("metrics")) {
    serve::write_snapshots_file(res.snapshots, args.get("metrics"));
    std::printf("wrote %zu metrics snapshots to %s\n", res.snapshots.size(),
                args.get("metrics").c_str());
  }

  std::printf("served %zu (%zu degraded) / shed %zu of %zu offered in %zu "
              "batches (makespan %.3f s)\n",
              r.served, r.degraded, r.shed, r.offered, res.batches,
              res.makespan_s);
  std::printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f  max %.3f\n",
              r.p50_ms, r.p95_ms, r.p99_ms, r.mean_ms, r.max_ms);
  std::printf("queue wait: %.3f ms mean; throughput %.0f qps, goodput %.0f qps\n",
              r.mean_queue_wait_ms, r.throughput_qps, r.goodput_qps);
  std::printf("timeout rate %.1f%%, shed rate %.1f%%\n", 100.0 * r.timeout_rate,
              100.0 * r.shed_rate);
  if (writer != nullptr) {
    std::printf("updates: %zu applied (%zu ins / %zu del), %zu publishes "
                "(%.3f ms), %zu re-layouts (%.3f ms); index v%llu: %zu live, "
                "nlist %zu\n",
                updates.applied, updates.inserts, updates.deletes,
                updates.publishes, updates.publish_seconds * 1e3,
                updates.relayouts, updates.relayout_seconds * 1e3,
                static_cast<unsigned long long>(backend->snapshot_version()),
                writer->live_count(), writer->nlist());
  }
  print_shard_health(*backend);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: drim <gen|build|info|gt|search|serve> [--key value ...]\n"
               "see the header of tools/drim_cli.cpp for the full reference\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "build") return cmd_build(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "gt") return cmd_gt(args);
    if (cmd == "search") return cmd_search(args);
    if (cmd == "serve") return cmd_serve(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
